//! rocBLAS-like tiled SGEMM kernel library.
//!
//! Real BLAS libraries ship many GEMM kernels specialized by tile size and
//! pick one per problem shape; which kernel runs therefore changes with
//! the operand shapes — and, for SQNNs, with sequence length. That is the
//! mechanism behind the paper's Fig. 5 ("the types of unique kernels
//! differ based on sequence length"). This module reproduces it with a
//! small variant library and a shape-driven cost model.

use serde::{Deserialize, Serialize};

use crate::{kernel_time, GpuConfig, KernelDesc, KernelKind};

/// A GEMM problem `C[m×n] += A[m×k] · B[k×n]` (column counts in elements,
/// FP32 operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Rows of `A`/`C`.
    pub m: u64,
    /// Columns of `A` / rows of `B` (the contraction dimension).
    pub k: u64,
    /// Columns of `B`/`C`.
    pub n: u64,
}

impl GemmShape {
    /// Create a GEMM shape. Zero dimensions are permitted and produce an
    /// empty (zero-flop) kernel.
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        GemmShape { m, k, n }
    }

    /// Multiply-accumulate flop count, `2·m·k·n`.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }

    /// Compulsory traffic in bytes: each operand touched once.
    pub fn footprint_bytes(&self) -> f64 {
        4.0 * (self.m * self.k + self.k * self.n + self.m * self.n) as f64
    }
}

impl std::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.k, self.n)
    }
}

/// One compiled GEMM kernel variant (a tile configuration).
///
/// `Serialize`-only: the `&'static str` label refers into the compiled-in
/// kernel library ([`VARIANTS`]), so a variant cannot be deserialized —
/// it is looked up by label instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GemmVariant {
    /// Variant label embedded in kernel names.
    pub label: &'static str,
    /// Output-tile rows per workgroup.
    pub tile_m: u64,
    /// Output-tile columns per workgroup.
    pub tile_n: u64,
    /// Contraction-slice depth per LDS stage.
    pub tile_k: u64,
    /// Peak-throughput fraction achievable with perfect quantization.
    pub base_efficiency: f64,
}

/// The kernel library: macro tiles for large GEMMs down to skinny and
/// GEMV-like variants for degenerate shapes.
pub const VARIANTS: &[GemmVariant] = &[
    GemmVariant {
        label: "128x128x16",
        tile_m: 128,
        tile_n: 128,
        tile_k: 16,
        base_efficiency: 0.92,
    },
    GemmVariant {
        label: "128x64x16",
        tile_m: 128,
        tile_n: 64,
        tile_k: 16,
        base_efficiency: 0.90,
    },
    GemmVariant {
        label: "64x64x16",
        tile_m: 64,
        tile_n: 64,
        tile_k: 16,
        base_efficiency: 0.87,
    },
    GemmVariant {
        label: "64x32x16",
        tile_m: 64,
        tile_n: 32,
        tile_k: 16,
        base_efficiency: 0.82,
    },
    GemmVariant {
        label: "32x32x16",
        tile_m: 32,
        tile_n: 32,
        tile_k: 16,
        base_efficiency: 0.74,
    },
    GemmVariant {
        label: "16x16x16",
        tile_m: 16,
        tile_n: 16,
        tile_k: 16,
        base_efficiency: 0.58,
    },
    GemmVariant {
        label: "16x128x16",
        tile_m: 16,
        tile_n: 128,
        tile_k: 16,
        base_efficiency: 0.64,
    },
    GemmVariant {
        label: "128x16x16",
        tile_m: 128,
        tile_n: 16,
        tile_k: 16,
        base_efficiency: 0.64,
    },
    GemmVariant {
        label: "8x64x32",
        tile_m: 8,
        tile_n: 64,
        tile_k: 32,
        base_efficiency: 0.42,
    },
    GemmVariant {
        label: "64x8x32",
        tile_m: 64,
        tile_n: 8,
        tile_k: 32,
        base_efficiency: 0.42,
    },
];

fn div_ceil(a: u64, b: u64) -> u64 {
    if b == 0 {
        return 0;
    }
    a.div_ceil(b)
}

/// Build the kernel descriptor for running `shape` with `variant`.
///
/// `flavor` distinguishes the operand layout / pass (e.g. `"nn"` forward,
/// `"nt"` backward-data, `"tn"` backward-weights) exactly as transpose
/// flavors produce distinct kernels in real BLAS libraries; it becomes part
/// of the kernel name.
pub fn kernel_for(shape: GemmShape, flavor: &str, variant: &GemmVariant) -> KernelDesc {
    let GemmShape { m, k, n } = shape;
    let tiles_m = div_ceil(m, variant.tile_m);
    let tiles_n = div_ceil(n, variant.tile_n);
    let (mf, kf, nf) = (m as f64, k as f64, n as f64);

    // Each column of C-tiles re-reads the A panel; each row re-reads B.
    let reads = tiles_n as f64 * (mf * kf * 4.0) + tiles_m as f64 * (kf * nf * 4.0);
    let writes = mf * nf * 4.0;

    // Quantization: wasted lanes in partially filled tiles.
    let quant_m = if tiles_m > 0 {
        mf / (tiles_m * variant.tile_m) as f64
    } else {
        0.0
    };
    let quant_n = if tiles_n > 0 {
        nf / (tiles_n * variant.tile_n) as f64
    } else {
        0.0
    };
    // Short contractions cannot amortize the LDS pipeline.
    let k_ramp = kf / (kf + 32.0);
    let efficiency = (variant.base_efficiency * quant_m * quant_n * k_ramp).max(0.01);

    // L1 working set: the A/B tile slices staged per K-step.
    let l1_ws = 4.0 * (variant.tile_m * variant.tile_k + variant.tile_k * variant.tile_n) as f64;
    // L2 working set: the A and B panels being streamed.
    let l2_ws = 4.0 * (m * k + k * n) as f64;
    let footprint = shape.footprint_bytes();
    let l2_locality = if reads > 0.0 {
        (1.0 - footprint / (reads + writes)).clamp(0.0, 1.0)
    } else {
        0.0
    };

    KernelDesc::builder(
        format!("gemm_{}_{}", flavor, variant.label),
        KernelKind::Gemm,
    )
    .flops(shape.flops())
    .read_bytes(reads)
    .write_bytes(writes)
    .footprint_bytes(footprint)
    .l1_reuse(0.55, l1_ws)
    .l2_reuse(l2_locality, l2_ws)
    .workgroups((tiles_m * tiles_n) as f64)
    .efficiency(efficiency)
    .build()
}

/// Pick the fastest variant for `shape` on `cfg` by evaluating the timing
/// model for every library variant (what a BLAS autotuner does with real
/// timing runs).
pub fn best_variant(cfg: &GpuConfig, shape: GemmShape, flavor: &str) -> &'static GemmVariant {
    let mut best = &VARIANTS[0];
    let mut best_t = f64::INFINITY;
    for v in VARIANTS {
        let t = kernel_time(cfg, &kernel_for(shape, flavor, v)).time_s;
        if t < best_t {
            best_t = t;
            best = v;
        }
    }
    best
}

/// Fraction of the full-shape runtime an autotune measurement costs:
/// autotuners time candidates on truncated problem instances (a few
/// K-slices), not the full GEMM.
const MINI_PROBLEM_FACTOR: f64 = 0.25;

/// Total time an autotune pass spends measuring every variant of `shape`
/// (`trials` truncated timing runs per variant), mirroring the paper's
/// "autotune" phase (Section IV-C2): expensive, but one-time.
pub fn tuning_cost_s(cfg: &GpuConfig, shape: GemmShape, flavor: &str, trials: u32) -> f64 {
    VARIANTS
        .iter()
        .map(|v| kernel_time(cfg, &kernel_for(shape, flavor, v)).time_s)
        .sum::<f64>()
        * f64::from(trials)
        * MINI_PROBLEM_FACTOR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_formula() {
        let s = GemmShape::new(2, 3, 4);
        assert_eq!(s.flops(), 48.0);
        assert_eq!(s.footprint_bytes(), 4.0 * (6 + 12 + 8) as f64);
    }

    #[test]
    fn large_square_gemm_prefers_large_tiles() {
        let cfg = GpuConfig::vega_fe();
        let v = best_variant(&cfg, GemmShape::new(4096, 4096, 4096), "nn");
        assert!(v.tile_m >= 64 && v.tile_n >= 64, "picked {}", v.label);
    }

    #[test]
    fn skinny_m_gemm_avoids_wide_m_tiles() {
        let cfg = GpuConfig::vega_fe();
        // The DS2 classifier shape: M=29 (vocabulary), huge N. A 128-row
        // tile would waste over 3/4 of each tile; the tuner must pick a
        // narrower variant (either compute-efficient 16/8 rows or a
        // single-tile 32/64 that reads B only once).
        let v = best_variant(&cfg, GemmShape::new(29, 1600, 25728), "nn");
        assert!(v.tile_m <= 64, "picked {}", v.label);
        // And it must differ from the large-square choice.
        let square = best_variant(&cfg, GemmShape::new(4096, 4096, 4096), "nn");
        assert_ne!(v.label, square.label);
    }

    #[test]
    fn variant_choice_depends_on_n() {
        // The same layer at different sequence lengths (N = batch·T) can
        // bind to different kernels — the paper's Fig. 5 mechanism.
        let cfg = GpuConfig::vega_fe();
        let small = best_variant(&cfg, GemmShape::new(4096, 1024, 64), "nn");
        let large = best_variant(&cfg, GemmShape::new(4096, 1024, 12800), "nn");
        assert_ne!(small.label, large.label);
    }

    #[test]
    fn kernel_name_includes_flavor_and_variant() {
        let v = &VARIANTS[0];
        let k = kernel_for(GemmShape::new(128, 128, 128), "nt", v);
        assert_eq!(k.name(), "gemm_nt_128x128x16");
        assert_eq!(k.kind(), KernelKind::Gemm);
    }

    #[test]
    fn perfect_tiles_have_full_quantization() {
        let v = &VARIANTS[0]; // 128x128x16
        let exact = kernel_for(GemmShape::new(256, 512, 256), "nn", v);
        let ragged = kernel_for(GemmShape::new(257, 512, 257), "nn", v);
        assert!(exact.efficiency() > ragged.efficiency());
    }

    #[test]
    fn traffic_exceeds_footprint_for_reuse_shapes() {
        let v = &VARIANTS[2];
        let s = GemmShape::new(1024, 1024, 1024);
        let k = kernel_for(s, "nn", v);
        assert!(k.read_bytes() + k.write_bytes() > k.footprint_bytes());
        assert!(k.l2_locality() > 0.5);
    }

    #[test]
    fn empty_shape_is_harmless() {
        let v = &VARIANTS[0];
        let k = kernel_for(GemmShape::new(0, 128, 128), "nn", v);
        assert_eq!(k.flops(), 0.0);
        let cfg = GpuConfig::vega_fe();
        let t = kernel_time(&cfg, &k);
        assert!(t.time_s >= cfg.launch_overhead_s());
    }

    #[test]
    fn tuning_cost_is_positive_and_scales_with_trials() {
        let cfg = GpuConfig::vega_fe();
        let s = GemmShape::new(512, 512, 512);
        let c1 = tuning_cost_s(&cfg, s, "nn", 1);
        let c3 = tuning_cost_s(&cfg, s, "nn", 3);
        assert!(c1 > 0.0);
        assert!((c3 / c1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_gemm_takes_longer() {
        let cfg = GpuConfig::vega_fe();
        let small = kernel_for(GemmShape::new(1024, 1024, 64), "nn", &VARIANTS[2]);
        let large = kernel_for(GemmShape::new(1024, 1024, 6400), "nn", &VARIANTS[2]);
        assert!(kernel_time(&cfg, &large).time_s > kernel_time(&cfg, &small).time_s);
    }
}
