//! k-means clustering over per-iteration execution-profile vectors.
//!
//! Section VII-C of the paper: the authors also tried clustering the
//! iterations' execution profiles with k-means and found that simple SL
//! binning "performs as well", because iteration runtime is already a
//! good proxy for the execution profile. This module provides that
//! comparator (k-means++ seeding, Lloyd iterations, BIC model selection)
//! so the claim can be reproduced as an ablation.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::CoreError;

/// The result of one k-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Per-cluster sizes.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// For each cluster, the index of the input point closest to its
    /// centroid (the cluster's representative, SimPoint-style), paired
    /// with the cluster size as its weight. Empty clusters are skipped.
    pub fn representatives(&self, data: &[Vec<f64>]) -> Vec<(usize, u64)> {
        let sizes = self.cluster_sizes();
        let mut reps = Vec::new();
        for (c, centroid) in self.centroids.iter().enumerate() {
            if sizes[c] == 0 {
                continue;
            }
            let best = self
                .assignments
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == c)
                .min_by(|&(i, _), &(j, _)| {
                    sq_dist(&data[i], centroid).total_cmp(&sq_dist(&data[j], centroid))
                })
                .map(|(i, _)| i)
                .expect("cluster is non-empty");
            reps.push((best, sizes[c] as u64));
        }
        reps
    }

    /// Bayesian information criterion of the clustering under a
    /// spherical-Gaussian model (higher is better) — the model-selection
    /// score SimPoint uses to choose `k`.
    pub fn bic(&self, data: &[Vec<f64>]) -> f64 {
        let n = data.len() as f64;
        let d = data.first().map_or(1, |v| v.len()) as f64;
        let k = self.k() as f64;
        if n <= k {
            return f64::NEG_INFINITY;
        }
        // Variance MLE (floored to avoid log(0) on degenerate data).
        let variance = (self.inertia / (d * (n - k))).max(1e-12);
        let sizes = self.cluster_sizes();
        let mut log_likelihood = 0.0;
        for &size in &sizes {
            if size == 0 {
                continue;
            }
            let ni = size as f64;
            log_likelihood += ni * (ni / n).ln()
                - ni * d / 2.0 * (2.0 * std::f64::consts::PI * variance).ln()
                - (ni - 1.0) * d / 2.0;
        }
        let params = k * (d + 1.0);
        log_likelihood - params / 2.0 * n.ln()
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Run k-means with k-means++ seeding and Lloyd iterations.
///
/// Deterministic for a given `seed`. Converges when assignments stop
/// changing or after 100 sweeps.
///
/// # Errors
///
/// [`CoreError::EmptyLog`] for empty data,
/// [`CoreError::InvalidParameter`] for `k == 0`, `k > len`, or ragged
/// dimensionality.
pub fn kmeans(data: &[Vec<f64>], k: usize, seed: u64) -> Result<KMeansResult, CoreError> {
    if data.is_empty() {
        return Err(CoreError::EmptyLog);
    }
    if k == 0 || k > data.len() {
        return Err(CoreError::invalid(
            "k",
            format!("k must be in 1..={}, got {k}", data.len()),
        ));
    }
    let dim = data[0].len();
    if data.iter().any(|v| v.len() != dim) {
        return Err(CoreError::invalid("data", "ragged feature vectors"));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    let mut d2: Vec<f64> = data.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..data.len())
        } else {
            let mut draw = rng.gen::<f64>() * total;
            let mut pick = data.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if draw < w {
                    pick = i;
                    break;
                }
                draw -= w;
            }
            pick
        };
        centroids.push(data[next].clone());
        for (i, p) in data.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, centroids.last().expect("just pushed")));
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; data.len()];
    for _sweep in 0..100 {
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| sq_dist(p, &centroids[a]).total_cmp(&sq_dist(p, &centroids[b])))
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in data.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, &x) in sums[assignments[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = data
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    Ok(KMeansResult {
        assignments,
        centroids,
        inertia,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for i in 0..20 {
            data.push(vec![0.0 + (i % 5) as f64 * 0.01, 0.0]);
            data.push(vec![10.0 + (i % 5) as f64 * 0.01, 10.0]);
        }
        data
    }

    #[test]
    fn separates_obvious_blobs() {
        let data = two_blobs();
        let r = kmeans(&data, 2, 42).unwrap();
        assert_eq!(r.k(), 2);
        // All even indices (blob A) share a cluster; odd (blob B) the other.
        let a = r.assignments[0];
        for i in (0..data.len()).step_by(2) {
            assert_eq!(r.assignments[i], a);
        }
        assert_ne!(r.assignments[1], a);
        assert!(r.inertia < 1.0);
    }

    #[test]
    fn representatives_are_cluster_members() {
        let data = two_blobs();
        let r = kmeans(&data, 2, 1).unwrap();
        let reps = r.representatives(&data);
        assert_eq!(reps.len(), 2);
        let total: u64 = reps.iter().map(|&(_, w)| w).sum();
        assert_eq!(total as usize, data.len());
        for &(idx, _) in &reps {
            assert!(idx < data.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = two_blobs();
        assert_eq!(kmeans(&data, 3, 7).unwrap(), kmeans(&data, 3, 7).unwrap());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let r = kmeans(&data, 5, 3).unwrap();
        assert!(r.inertia < 1e-18);
    }

    #[test]
    fn bic_prefers_the_true_k() {
        let data = two_blobs();
        let bic1 = kmeans(&data, 1, 5).unwrap().bic(&data);
        let bic2 = kmeans(&data, 2, 5).unwrap().bic(&data);
        assert!(bic2 > bic1, "bic2 {bic2} should beat bic1 {bic1}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(kmeans(&[], 1, 0).is_err());
        let data = vec![vec![1.0], vec![2.0]];
        assert!(kmeans(&data, 0, 0).is_err());
        assert!(kmeans(&data, 3, 0).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(kmeans(&ragged, 1, 0).is_err());
    }

    #[test]
    fn identical_points_collapse() {
        let data = vec![vec![5.0, 5.0]; 10];
        let r = kmeans(&data, 3, 9).unwrap();
        assert!(r.inertia < 1e-18);
        let reps = r.representatives(&data);
        let total: u64 = reps.iter().map(|&(_, w)| w).sum();
        assert_eq!(total, 10);
    }
}
