use serde::{Deserialize, Serialize};

use crate::binning::bin_profiles;
use crate::{CoreError, EpochLog, SeqPointSet, SlProfile};

/// Tunable thresholds of the SeqPoint mechanism (paper Section V-C).
///
/// Defaults match the paper: `n = 10` (below this many unique SLs, all of
/// them become SeqPoints), initial `k = 5` bins, and an error threshold
/// `e` of 1% on the identification configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeqPointConfig {
    /// If the log has at most this many unique SLs, every SL is a
    /// SeqPoint (the paper's `n`, default 10).
    pub sl_threshold_n: usize,
    /// Starting bin count (the paper's initial `k`, default 5).
    pub initial_k: u32,
    /// Projection-error target in percent (the paper's user-specified
    /// `e`, default 1%).
    pub error_threshold_pct: f64,
    /// Safety cap on `k`; refinement stops here even if `e` is unmet.
    pub max_k: u32,
}

impl Default for SeqPointConfig {
    fn default() -> Self {
        SeqPointConfig {
            sl_threshold_n: 10,
            initial_k: 5,
            error_threshold_pct: 1.0,
            max_k: 64,
        }
    }
}

/// The outcome of running the SeqPoint pipeline on one epoch log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqPointAnalysis {
    seqpoints: SeqPointSet,
    k: u32,
    refinements: u32,
    actual_total: f64,
    predicted_total: f64,
    iterations: usize,
    unique_sls: usize,
}

impl SeqPointAnalysis {
    /// The selected representative iterations.
    pub fn seqpoints(&self) -> &SeqPointSet {
        &self.seqpoints
    }

    /// The bin count the refinement loop settled on (equals the number of
    /// unique SLs when the `n` threshold short-circuited).
    pub fn k(&self) -> u32 {
        self.k
    }

    /// How many times `k` was incremented (Fig. 10's feedback edge).
    pub fn refinements(&self) -> u32 {
        self.refinements
    }

    /// The measured epoch total of the statistic.
    pub fn actual_total(&self) -> f64 {
        self.actual_total
    }

    /// Eq. 1 evaluated with the identification-time statistics.
    pub fn predicted_total(&self) -> f64 {
        self.predicted_total
    }

    /// Identification-time projection error, percent.
    pub fn self_error_pct(&self) -> f64 {
        if self.actual_total == 0.0 {
            return 0.0;
        }
        ((self.predicted_total - self.actual_total) / self.actual_total).abs() * 100.0
    }

    /// Iterations in the profiled epoch.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Unique sequence lengths in the profiled epoch.
    pub fn unique_sls(&self) -> usize {
        self.unique_sls
    }

    /// The profiling reduction factor: epoch iterations per SeqPoint.
    pub fn iteration_reduction(&self) -> f64 {
        if self.seqpoints.is_empty() {
            return 0.0;
        }
        self.iterations as f64 / self.seqpoints.len() as f64
    }
}

/// The iterative SeqPoint mechanism of the paper's Fig. 10.
///
/// ```
/// use seqpoint_core::{EpochLog, SeqPointConfig, SeqPointPipeline};
///
/// # fn main() -> Result<(), seqpoint_core::CoreError> {
/// let log = EpochLog::from_pairs((0..200).map(|i| (10 + i % 90, 1.0 + (i % 90) as f64 * 0.05)));
/// let analysis = SeqPointPipeline::with_config(SeqPointConfig {
///     error_threshold_pct: 0.5,
///     ..SeqPointConfig::default()
/// })
/// .run(&log)?;
/// assert!(analysis.self_error_pct() <= 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeqPointPipeline {
    config: SeqPointConfig,
}

impl SeqPointPipeline {
    /// A pipeline with the paper's default thresholds.
    pub fn new() -> Self {
        SeqPointPipeline::default()
    }

    /// A pipeline with custom thresholds.
    pub fn with_config(config: SeqPointConfig) -> Self {
        SeqPointPipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SeqPointConfig {
        &self.config
    }

    /// Run the mechanism on an epoch log.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyLog`] — the log has no iterations.
    /// * [`CoreError::InvalidParameter`] — zero `initial_k`/`max_k` or a
    ///   non-positive, non-finite error threshold.
    /// * [`CoreError::ThresholdNotMet`] — `max_k` was reached with the
    ///   error still above `e` (callers wanting the best-effort result can
    ///   raise `max_k`; with `k` = number of unique SLs the error is 0, so
    ///   this only fires when `max_k` is set below that).
    pub fn run(&self, log: &EpochLog) -> Result<SeqPointAnalysis, CoreError> {
        if log.is_empty() {
            return Err(CoreError::EmptyLog);
        }
        self.run_aggregated(&log.sl_profiles(), log.actual_total(), log.len())
    }

    /// Run the mechanism on per-SL aggregates directly, without a
    /// materialized per-iteration log — the entry point of the streaming
    /// path ([`crate::stream`]), whose merged tracker state *is* this
    /// aggregate. The epoch total and iteration count are derived from
    /// the profiles.
    ///
    /// `profiles` must be ascending by `seq_len` with no duplicates
    /// (the shape [`EpochLog::sl_profiles`] produces).
    ///
    /// # Errors
    ///
    /// As [`SeqPointPipeline::run`], plus [`CoreError::InvalidParameter`]
    /// for unsorted or duplicated profiles.
    pub fn run_profiles(&self, profiles: &[SlProfile]) -> Result<SeqPointAnalysis, CoreError> {
        if profiles.is_empty() {
            return Err(CoreError::EmptyLog);
        }
        if profiles.windows(2).any(|w| w[0].seq_len >= w[1].seq_len) {
            return Err(CoreError::invalid(
                "profiles",
                "must be ascending by seq_len without duplicates",
            ));
        }
        let actual_total = profiles.iter().map(|p| p.mean_stat * p.count as f64).sum();
        let iterations = profiles.iter().map(|p| p.count).sum::<u64>() as usize;
        self.run_aggregated(profiles, actual_total, iterations)
    }

    fn run_aggregated(
        &self,
        profiles: &[SlProfile],
        actual_total: f64,
        iterations: usize,
    ) -> Result<SeqPointAnalysis, CoreError> {
        let cfg = &self.config;
        if cfg.initial_k == 0 || cfg.max_k == 0 {
            return Err(CoreError::invalid("initial_k/max_k", "must be positive"));
        }
        if cfg.error_threshold_pct <= 0.0 || !cfg.error_threshold_pct.is_finite() {
            return Err(CoreError::invalid(
                "error_threshold_pct",
                "must be positive and finite",
            ));
        }
        let unique = profiles.len();

        // Fig. 10, step 1 short-circuit: few unique SLs ⇒ take them all.
        // Binning by the SL span guarantees one bin (and thus one
        // SeqPoint) per unique SL, making the projection exact.
        if unique <= cfg.sl_threshold_n {
            let span = profiles.last().expect("non-empty").seq_len
                - profiles.first().expect("non-empty").seq_len
                + 1;
            let bins = bin_profiles(profiles, span)?;
            let set = SeqPointSet::select(&bins);
            let predicted = set.project_total();
            return Ok(SeqPointAnalysis {
                k: set.len() as u32,
                refinements: 0,
                predicted_total: predicted,
                seqpoints: set,
                actual_total,
                iterations,
                unique_sls: unique,
            });
        }

        // Steps 2–6: bin, select, project, and refine k until the error
        // threshold is met.
        let mut k = cfg.initial_k;
        let mut refinements = 0;
        loop {
            let bins = bin_profiles(profiles, k)?;
            let set = SeqPointSet::select(&bins);
            let predicted = set.project_total();
            let error_pct = if actual_total == 0.0 {
                0.0
            } else {
                ((predicted - actual_total) / actual_total).abs() * 100.0
            };
            let converged = error_pct <= cfg.error_threshold_pct;
            // Once every unique SL has its own bin the projection is exact;
            // no point refining further.
            let exhausted = k >= cfg.max_k || set.len() == unique;
            if converged || exhausted {
                if !converged {
                    return Err(CoreError::ThresholdNotMet {
                        achieved_error_pct: error_pct,
                        threshold_pct: cfg.error_threshold_pct,
                    });
                }
                return Ok(SeqPointAnalysis {
                    k,
                    refinements,
                    predicted_total: predicted,
                    seqpoints: set,
                    actual_total,
                    iterations,
                    unique_sls: unique,
                });
            }
            k += 1;
            refinements += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A log resembling the paper's setting: linear stat in SL with a
    /// skewed SL distribution.
    fn skewed_log() -> EpochLog {
        let mut pairs = Vec::new();
        for i in 0..400u32 {
            // Many short, few long: sl in [10, 160].
            let sl = 10 + ((i * i) % 151);
            pairs.push((sl, 0.3 + f64::from(sl) * 0.01));
        }
        EpochLog::from_pairs(pairs)
    }

    #[test]
    fn meets_error_threshold() {
        let a = SeqPointPipeline::new().run(&skewed_log()).unwrap();
        assert!(a.self_error_pct() <= 1.0);
        assert!(a.k() >= 5);
        assert_eq!(
            a.seqpoints().total_weight() as usize,
            a.iterations(),
            "weights must cover every iteration"
        );
    }

    #[test]
    fn few_unique_sls_short_circuits() {
        let log = EpochLog::from_pairs([(5, 1.0), (5, 1.1), (9, 2.0), (14, 3.0)]);
        let a = SeqPointPipeline::new().run(&log).unwrap();
        assert_eq!(a.seqpoints().len(), 3); // all unique SLs
        assert_eq!(a.refinements(), 0);
        // With every SL a SeqPoint, the projection is exact.
        assert!(a.self_error_pct() < 1e-9);
    }

    #[test]
    fn tighter_threshold_needs_more_seqpoints() {
        let log = skewed_log();
        let loose = SeqPointPipeline::with_config(SeqPointConfig {
            error_threshold_pct: 5.0,
            ..SeqPointConfig::default()
        })
        .run(&log)
        .unwrap();
        let tight = SeqPointPipeline::with_config(SeqPointConfig {
            error_threshold_pct: 0.05,
            max_k: 256,
            ..SeqPointConfig::default()
        })
        .run(&log)
        .unwrap();
        assert!(tight.k() >= loose.k());
        assert!(tight.self_error_pct() <= 0.05);
    }

    #[test]
    fn k_equal_to_unique_sls_is_exact_for_evenly_spaced_sls() {
        // Evenly spaced SLs (gap 3 > bin width) so that k = #unique puts
        // each SL in its own bin, making the projection exact.
        let log = EpochLog::from_pairs((0..400u32).map(|i| {
            let sl = 10 + (i % 50) * 3;
            (sl, 0.3 + f64::from(sl) * 0.01)
        }));
        let unique = log.unique_sl_count() as u32;
        let a = SeqPointPipeline::with_config(SeqPointConfig {
            initial_k: unique,
            max_k: unique.max(1),
            error_threshold_pct: 1e-6,
            sl_threshold_n: 0,
        })
        .run(&log)
        .unwrap();
        assert!(a.self_error_pct() < 1e-9);
        assert_eq!(a.seqpoints().len(), unique as usize);
    }

    #[test]
    fn equal_width_bins_may_need_more_k_than_unique_sls() {
        // With irregularly spaced SLs, k = #unique equal-width bins can
        // leave two SLs sharing a bin; the loop must keep refining.
        let a = SeqPointPipeline::with_config(SeqPointConfig {
            error_threshold_pct: 0.5,
            max_k: 256,
            ..SeqPointConfig::default()
        })
        .run(&skewed_log())
        .unwrap();
        assert!(a.self_error_pct() <= 0.5);
    }

    #[test]
    fn max_k_failure_reports_achieved_error() {
        // A pathological log where 1 bin cannot meet a microscopic
        // threshold, and max_k forbids refinement.
        let log = EpochLog::from_pairs((0..100).flat_map(|i| {
            let sl = 1 + i % 50;
            vec![(sl, f64::from(sl) * f64::from(sl))]
        }));
        let result = SeqPointPipeline::with_config(SeqPointConfig {
            initial_k: 1,
            max_k: 1,
            error_threshold_pct: 1e-9,
            sl_threshold_n: 0,
        })
        .run(&log);
        assert!(matches!(result, Err(CoreError::ThresholdNotMet { .. })));
    }

    #[test]
    fn rejects_invalid_inputs() {
        let log = skewed_log();
        assert_eq!(
            SeqPointPipeline::new().run(&EpochLog::new()),
            Err(CoreError::EmptyLog)
        );
        let bad_k = SeqPointConfig {
            initial_k: 0,
            ..SeqPointConfig::default()
        };
        assert!(SeqPointPipeline::with_config(bad_k).run(&log).is_err());
        let bad_e = SeqPointConfig {
            error_threshold_pct: 0.0,
            ..SeqPointConfig::default()
        };
        assert!(SeqPointPipeline::with_config(bad_e).run(&log).is_err());
    }

    #[test]
    fn reduction_factor_counts_iterations_per_point() {
        let a = SeqPointPipeline::new().run(&skewed_log()).unwrap();
        let expected = 400.0 / a.seqpoints().len() as f64;
        assert!((a.iteration_reduction() - expected).abs() < 1e-12);
    }
}
