//! # seqpoint-core — the SeqPoint methodology
//!
//! This crate implements the paper's contribution (Section V): given the
//! per-iteration log of **one** training epoch — each iteration's padded
//! sequence length (SL) and a cheap statistic such as runtime — select a
//! small set of representative iterations (*SeqPoints*) whose weighted
//! statistics project the behaviour of the whole training run.
//!
//! The mechanism (the paper's Fig. 10):
//!
//! 1. aggregate the log per unique SL ([`EpochLog::sl_profiles`]);
//! 2. if the number of unique SLs is at most the threshold `n`, every
//!    unique SL is a SeqPoint;
//! 3. otherwise bin the SLs into `k` contiguous ranges
//!    ([`binning::bin_profiles`]), pick per bin the SL whose statistic is
//!    closest to the bin average, and weight it by the bin's iteration
//!    count;
//! 4. project the whole-epoch statistic as the weighted sum (Eq. 1) and
//!    compare against the measured total; if the error exceeds the
//!    threshold `e`, increment `k` and repeat.
//!
//! The resulting [`SeqPointSet`] is architecture independent: identified
//! once (the paper uses config #1), it can be re-profiled on any hardware
//! configuration with [`SeqPointSet::project_total_with`].
//!
//! The crate also ships the comparison machinery of the paper's
//! evaluation: the `Frequent` / `Median` / `Worst` single-iteration
//! selectors and the `Prior` contiguous-window sampler
//! ([`baselines`]), plus the k-means execution-profile clustering the
//! authors found unnecessary (Section VII-C; [`kmeans`], [`simpoint`]).
//!
//! For epochs too large to materialize, [`stream`] scales the mechanism
//! to a sharded streaming ingestion path built on [`online`]: worker
//! shards merge [`online::OnlineSlTracker`] state round by round,
//! measurement stops once the SL space saturates, and the remainder of
//! the epoch is counted as free shape metadata — the selection over the
//! streamed counts matches the full-epoch path exactly.
//!
//! ```
//! use seqpoint_core::{EpochLog, SeqPointPipeline};
//!
//! # fn main() -> Result<(), seqpoint_core::CoreError> {
//! // A synthetic epoch: runtime grows linearly with sequence length.
//! let log = EpochLog::from_pairs(
//!     (0..500).map(|i| {
//!         let sl = 10 + (i * 37) % 150;
//!         (sl as u32, 0.5 + sl as f64 * 0.01)
//!     }),
//! );
//! let analysis = SeqPointPipeline::new().run(&log)?;
//! assert!(analysis.self_error_pct() < 1.0);
//! println!("{} SeqPoints (k = {})", analysis.seqpoints().len(), analysis.k());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod binning;
pub mod kmeans;
pub mod multi;
pub mod online;
pub mod protocol;
pub mod simpoint;
pub mod stats;
pub mod stream;

mod error;
mod iteration;
mod pipeline;
mod select;

pub use baselines::{BaselineKind, BaselineSelection};
pub use error::CoreError;
pub use iteration::{EpochLog, IterationRecord, SlProfile};
pub use pipeline::{SeqPointAnalysis, SeqPointConfig, SeqPointPipeline};
pub use select::{SeqPoint, SeqPointSet};
pub use stream::{select_streaming, StreamConfig, StreamingAnalysis, StreamingSelector};
