//! Wire vocabulary of the `seqpoint serve` profiling service.
//!
//! The service speaks newline-delimited JSON over a Unix domain socket:
//! one [`Request`] per line from clients (and the initial hello from
//! workers), one [`Response`] per line back, and — on connections that
//! announced themselves as workers — [`WorkerTask`] lines from the
//! server answered by [`WorkerReply`] lines.
//!
//! This module only defines the *frames*. Heavy payloads that belong to
//! other crates (per-shard tracker state, iteration profiles) travel as
//! embedded JSON strings in the **checkpoint interchange format**: the
//! exact serialization `StreamingSelector::checkpoint` and the streaming
//! checkpoints use, with round-trip-exact floats — which is what makes
//! a subprocess worker's round reports bit-identical to the in-process
//! thread executor's. Framing stays in `seqpoint_core`, payload
//! semantics stay with their owning crates, and a future TCP transport
//! reuses both unchanged.
//!
//! Parsing goes through the vendored depth-limited JSON parser, so a
//! malformed or adversarially nested request line fails with a
//! [`CoreError`] instead of aborting the daemon (pinned by the protocol
//! property tests).

use serde::{Deserialize, Serialize};

use crate::stream::StreamConfig;
use crate::CoreError;

/// Version of the request/response vocabulary. Servers reject lines
/// whose semantics they cannot honor; bumped on breaking changes.
/// Version 2 added the [`Request::Hello`]/[`Response::Welcome`]
/// handshake that carries the TCP auth token and version check.
/// Version 3 added multi-tenant scheduling: client identity in the
/// handshake, scheduling class/client fields in [`JobSpec`], the
/// [`Request::Register`]/[`WorkerTask::Lease`] fleet frames, and
/// cache/fleet accounting in [`Response::Pong`]/[`Response::Status`].
/// Version 4 added the [`Request::Metrics`]/[`Response::Metrics`] live
/// metrics frames (full registry exposition over the wire).
pub const PROTOCOL_VERSION: u32 = 4;

/// Scheduling class of a job under the weighted-fair scheduler.
///
/// Classes partition the queue: the scheduler picks the eligible class
/// with the smallest weighted virtual time, so a flood of `batch`
/// submissions cannot starve an `interactive` job — it only slows it by
/// the inverse weight ratio. The class is *not* part of the result
/// cache key: an interactive and a batch submission of the same work
/// share one profiling run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// Latency-sensitive, human-in-the-loop work (the default).
    #[default]
    Interactive,
    /// Throughput work that tolerates queueing behind interactive jobs.
    Batch,
}

impl JobClass {
    /// Lowercase label for human-facing output and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            JobClass::Interactive => "interactive",
            JobClass::Batch => "batch",
        }
    }

    /// Scheduler weight: virtual time advances by `1 / weight` per
    /// dispatched job, so a class with weight 4 gets ~4 slots for every
    /// 1 a weight-1 class gets under contention.
    pub fn weight(self) -> u64 {
        match self {
            JobClass::Interactive => 4,
            JobClass::Batch => 1,
        }
    }

    /// Parse a CLI/wire label (`interactive`/`batch`).
    pub fn parse(label: &str) -> Option<JobClass> {
        match label {
            "interactive" => Some(JobClass::Interactive),
            "batch" => Some(JobClass::Batch),
            _ => None,
        }
    }
}

/// Everything that defines one profiling/selection job: the workload
/// (model × dataset × scale × batch), the device configuration, and the
/// per-job streaming/early-stop thresholds.
///
/// The spec deliberately mirrors the `seqpoint stream` flags so a served
/// job and an offline run are the same experiment — the service smoke
/// test asserts their outputs are byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Bundled model name (`gnmt`, `ds2`, …).
    pub model: String,
    /// Bundled dataset name (`iwslt15`, `wmt16`, `librispeech100`).
    pub dataset: String,
    /// Corpus samples to draw.
    #[serde(default)]
    pub samples: u64,
    /// Table II hardware configuration (1..=5).
    #[serde(default)]
    pub config: u32,
    /// Corpus/shuffle seed.
    #[serde(default)]
    pub seed: u64,
    /// Samples per iteration (shuffled steady-state batching).
    #[serde(default)]
    pub batch: u32,
    /// Worker shards each round is dealt across.
    #[serde(default)]
    pub shards: u32,
    /// Iterations per ingestion round.
    #[serde(default)]
    pub round_len: u32,
    /// Early-stop thresholds and selection pipeline configuration.
    #[serde(default)]
    pub stream: StreamConfig,
    /// Pause the job after this many rounds per scheduling attempt — a
    /// cooperative preemption budget; the server re-queues the job so
    /// other jobs get a slot (round-robin fairness across jobs).
    #[serde(default)]
    pub max_rounds: Option<u64>,
    /// Sleep this long between rounds, pacing the job (for shared hosts,
    /// and for deterministic mid-run drain in the smoke tests).
    #[serde(default)]
    pub throttle_ms: u64,
    /// Scheduling class (weighted-fair queueing); not part of the
    /// result-cache key.
    #[serde(default)]
    pub class: JobClass,
    /// Submitting client identity. Stamped by the server from the
    /// `Hello` handshake (or the `--client` tag on Unix sockets); used
    /// for per-client fair scheduling and in-flight quotas, never for
    /// the result-cache key.
    #[serde(default)]
    pub client: String,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            model: String::new(),
            dataset: String::new(),
            samples: 20_000,
            config: 1,
            seed: 7,
            batch: 64,
            shards: 4,
            round_len: 64,
            stream: StreamConfig::default(),
            max_rounds: None,
            throttle_ms: 0,
            class: JobClass::Interactive,
            client: String::new(),
        }
    }
}

impl JobSpec {
    /// Replace zero-valued scale fields (the wire default for a field a
    /// hand-written submission omitted) with the standard `seqpoint
    /// stream` defaults. `seed` and `throttle_ms` keep their value — 0
    /// is meaningful for both.
    pub fn normalize(mut self) -> JobSpec {
        let d = JobSpec::default();
        if self.samples == 0 {
            self.samples = d.samples;
        }
        if self.config == 0 {
            self.config = d.config;
        }
        if self.batch == 0 {
            self.batch = d.batch;
        }
        if self.shards == 0 {
            self.shards = d.shards;
        }
        if self.round_len == 0 {
            self.round_len = d.round_len;
        }
        self
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted and waiting for a job slot.
    Queued,
    /// A runner is executing rounds right now.
    Running,
    /// Progress is persisted in a checkpoint; the job will resume (after
    /// a preemption pause, a lost worker, or a server restart).
    Paused,
    /// Finished; the rendered selection is available.
    Done,
    /// Terminally failed; the reason is recorded.
    Failed,
    /// Cancelled by request before completion.
    Cancelled,
}

impl JobState {
    /// Whether the state is terminal (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Lowercase label for human-facing output.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One client → server line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open a connection: declare the protocol version and present the
    /// shared-secret token. Mandatory as the **first** frame on a TCP
    /// connection (any other frame gets one error line and a close);
    /// optional on a Unix socket, where filesystem permissions already
    /// gate access. Answered by [`Response::Welcome`] or
    /// [`Response::Error`].
    Hello {
        /// The client's [`PROTOCOL_VERSION`]; mismatches are rejected.
        version: u32,
        /// The shared secret from `--token-file` (constant-time
        /// compared by the server), if the client has one.
        #[serde(default)]
        token: Option<String>,
        /// Client identity for fair scheduling and quotas. Optional for
        /// backward compatibility; connections that omit it are binned
        /// under the anonymous client.
        #[serde(default)]
        client: Option<String>,
    },
    /// Liveness/stats probe.
    Ping,
    /// Enqueue a job. `job` names it (idempotent resubmission across
    /// restarts); when `None` the server assigns `job-<n>`.
    Submit {
        /// Client-chosen job id, if any.
        job: Option<String>,
        /// The job to run.
        spec: JobSpec,
    },
    /// Report a job's lifecycle state.
    Status {
        /// The job id.
        job: String,
    },
    /// Fetch a job's rendered output. With `wait`, the response is
    /// deferred until the job reaches a terminal state.
    Result {
        /// The job id.
        job: String,
        /// Block until terminal instead of failing on a pending job.
        wait: bool,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job id.
        job: String,
    },
    /// Drain and exit: stop accepting work, checkpoint in-flight jobs,
    /// then shut the server down (the request-level twin of SIGTERM).
    Shutdown,
    /// Announce this connection as a worker; the server will send
    /// [`WorkerTask`] lines down it from now on.
    WorkerHello {
        /// The worker process id (for supervision and the kill tests).
        pid: u64,
    },
    /// Register this connection into the elastic worker fleet: the
    /// worker joins the shared pool, is leased per-round to whichever
    /// job the scheduler picks, and is reclaimed on disconnect. The
    /// version-3 spelling of [`Request::WorkerHello`] (which the server
    /// still accepts as an alias).
    Register {
        /// The worker process id (for supervision and the kill tests).
        pid: u64,
    },
    /// Fetch the live metrics exposition. Gated exactly like every
    /// other request: over TCP the connection must have authenticated
    /// via [`Request::Hello`] first. Answered by [`Response::Metrics`].
    Metrics,
}

/// One server → client line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to a successful [`Request::Hello`]: the connection is
    /// authenticated (where required) and may issue requests.
    Welcome {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Jobs waiting for a slot.
        queued: u64,
        /// Jobs currently executing.
        running: u64,
        /// Pids of the live subprocess workers (empty under thread
        /// placement).
        workers: Vec<u64>,
        /// Submissions answered from the result cache (retained result
        /// or single-flight attach) since the daemon started.
        #[serde(default)]
        cache_hits: u64,
        /// Terminal results currently retained by the cache.
        #[serde(default)]
        cache_entries: u64,
        /// Pids of registered fleet workers currently idle in the pool.
        #[serde(default)]
        fleet_idle: Vec<u64>,
        /// Per-round worker leases granted since the daemon started.
        #[serde(default)]
        fleet_leases: u64,
        /// Leased workers reclaimed dead (disconnect/SIGKILL) since the
        /// daemon started; each costs the holding job at most 1 round.
        #[serde(default)]
        fleet_reclaimed: u64,
    },
    /// The job was accepted.
    Submitted {
        /// The (possibly server-assigned) job id.
        job: String,
    },
    /// Backpressure: the bounded queue is full, try again later.
    Rejected {
        /// Why the job was not accepted.
        reason: String,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// The job id.
        job: String,
        /// Lifecycle state.
        state: JobState,
        /// Human-readable progress detail.
        detail: String,
        /// Whether this job was (or will be) answered from the result
        /// cache instead of its own profiling run.
        #[serde(default)]
        cache_hit: bool,
    },
    /// A finished job's rendered output.
    Result {
        /// The job id.
        job: String,
        /// The rendered selection (byte-identical to `seqpoint stream`).
        output: String,
    },
    /// The job failed; no output exists.
    Failed {
        /// The job id.
        job: String,
        /// The failure reason.
        reason: String,
    },
    /// The job was cancelled.
    Cancelled {
        /// The job id.
        job: String,
    },
    /// Answer to [`Request::Metrics`].
    Metrics {
        /// The full registry in Prometheus-style text exposition —
        /// byte-identical to what the `--metrics-addr` scrape endpoint
        /// serves at the same instant.
        text: String,
    },
    /// The server acknowledged a drain request and is shutting down.
    ShuttingDown,
    /// The request could not be honored (unknown job, malformed line,
    /// draining, …).
    Error {
        /// What went wrong.
        reason: String,
    },
}

/// One server → worker line: a unit of placed work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerTask {
    /// Profile one shard chunk of one round.
    Round {
        /// Bundled model name.
        model: String,
        /// Table II hardware configuration (1..=5).
        config: u32,
        /// Statistic label (`runtime`, `valu_insts`, …).
        stat: String,
        /// Shard index within the round.
        shard: u32,
        /// `(seq_len, samples)` batch shapes, in stream order.
        batches: Vec<(u32, u32)>,
    },
    /// Profile a single shape (the replay phase's on-demand path).
    Profile {
        /// Bundled model name.
        model: String,
        /// Table II hardware configuration (1..=5).
        config: u32,
        /// The shape's padded sequence length.
        seq_len: u32,
        /// The shape's batch size.
        samples: u32,
    },
    /// The round that follows is on behalf of this job: a fleet worker
    /// is being leased for one round. Informational — the worker
    /// records it (for diagnostics) and must **not** reply; the round
    /// tasks that follow are answered as usual.
    Lease {
        /// The job id holding the lease.
        job: String,
    },
    /// Exit cleanly (drain).
    Shutdown,
}

/// One worker → server line: the result of a [`WorkerTask`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerReply {
    /// Answer to [`WorkerTask::Round`].
    Round {
        /// Shard index this report answers.
        shard: u32,
        /// The chunk's `OnlineSlTracker` state, serialized in the
        /// checkpoint interchange format (round-trip-exact floats, so
        /// the merged selection is bit-identical to in-process runs).
        tracker: String,
        /// Simulated seconds the chunk's iterations take back to back.
        chunk_time_s: f64,
        /// The distinct shapes appearing in the chunk, as a serialized
        /// `Vec<IterationProfile>` in the checkpoint interchange format.
        shapes: String,
    },
    /// Answer to [`WorkerTask::Profile`]: one serialized
    /// `IterationProfile`.
    Profile {
        /// The profile, in the checkpoint interchange format.
        profile: String,
    },
    /// The task could not be executed (unknown model/config/stat).
    Error {
        /// What went wrong.
        reason: String,
    },
}

/// Render one protocol frame as a single NDJSON line (no trailing
/// newline; the transport adds it). The JSON encoder escapes embedded
/// newlines, so a frame can never span lines.
pub fn encode_frame<T: Serialize>(frame: &T) -> String {
    serde::json::to_string(frame).expect("protocol frames serialize infallibly")
}

/// Parse one NDJSON line into a protocol frame.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] on malformed JSON (including
/// adversarially deep nesting, which the depth-limited parser rejects
/// instead of overflowing the stack) or a shape mismatch with `T`.
pub fn decode_frame<T: for<'de> Deserialize<'de>>(line: &str) -> Result<T, CoreError> {
    serde::json::from_str(line.trim()).map_err(|e| CoreError::invalid("frame", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_single_lines() {
        let request = Request::Submit {
            job: Some("job with\nnewline".to_owned()),
            spec: JobSpec {
                model: "gnmt".to_owned(),
                dataset: "iwslt15".to_owned(),
                ..JobSpec::default()
            },
        };
        let line = encode_frame(&request);
        assert!(!line.contains('\n'), "frame must never span lines: {line}");
        let back: Request = decode_frame(&line).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn decode_rejects_garbage_with_an_error() {
        assert!(decode_frame::<Request>("").is_err());
        assert!(decode_frame::<Request>("not json").is_err());
        assert!(decode_frame::<Request>("{\"Nope\":{}}").is_err());
        // A request whose variant exists but whose payload is malformed.
        assert!(decode_frame::<Request>("{\"Status\":{}}").is_err());
    }

    #[test]
    fn hello_handshake_round_trips_and_token_defaults_to_none() {
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            token: Some("s3cret".to_owned()),
            client: Some("alice".to_owned()),
        };
        let back: Request = decode_frame(&encode_frame(&hello)).unwrap();
        assert_eq!(back, hello);
        // A tokenless, clientless hello (a version-2 Unix-socket
        // handshake) may omit both optional fields.
        let bare: Request = decode_frame("{\"Hello\":{\"version\":2}}").unwrap();
        assert_eq!(
            bare,
            Request::Hello {
                version: 2,
                token: None,
                client: None
            }
        );
        let welcome = Response::Welcome {
            version: PROTOCOL_VERSION,
        };
        let back: Response = decode_frame(&encode_frame(&welcome)).unwrap();
        assert_eq!(back, welcome);
    }

    #[test]
    fn job_class_labels_weights_and_parsing() {
        assert_eq!(JobClass::default(), JobClass::Interactive);
        assert_eq!(JobClass::Interactive.label(), "interactive");
        assert_eq!(JobClass::Batch.label(), "batch");
        assert!(JobClass::Interactive.weight() > JobClass::Batch.weight());
        assert_eq!(JobClass::parse("interactive"), Some(JobClass::Interactive));
        assert_eq!(JobClass::parse("batch"), Some(JobClass::Batch));
        assert_eq!(JobClass::parse("bulk"), None);
        let back: JobClass = decode_frame(&encode_frame(&JobClass::Batch)).unwrap();
        assert_eq!(back, JobClass::Batch);
    }

    #[test]
    fn job_state_labels_and_terminality() {
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Paused.is_terminal());
        assert_eq!(JobState::Paused.label(), "paused");
    }

    #[test]
    fn spec_defaults_fill_missing_fields() {
        let spec: JobSpec = decode_frame("{\"model\":\"gnmt\",\"dataset\":\"iwslt15\"}").unwrap();
        // Omitted numeric fields arrive as the wire default (0) and
        // normalize to the standard `seqpoint stream` defaults.
        let spec = spec.normalize();
        assert_eq!(spec.batch, 64);
        assert_eq!(spec.shards, 4);
        assert_eq!(spec.samples, 20_000);
        assert_eq!(spec.stream, StreamConfig::default());
        assert_eq!(spec.max_rounds, None);
        // Version-2 submissions carry no class/client; they land in the
        // default class under the anonymous client.
        assert_eq!(spec.class, JobClass::Interactive);
        assert_eq!(spec.client, "");
        // Normalization never touches explicitly provided fields.
        let explicit: JobSpec =
            decode_frame("{\"model\":\"gnmt\",\"dataset\":\"iwslt15\",\"batch\":16,\"shards\":3}")
                .unwrap();
        let explicit = explicit.normalize();
        assert_eq!(explicit.batch, 16);
        assert_eq!(explicit.shards, 3);
        // But the workload itself is required.
        assert!(decode_frame::<JobSpec>("{\"dataset\":\"iwslt15\"}").is_err());
    }
}
