//! Contiguous sequence-length binning (the paper's Fig. 10, step 2).
//!
//! SLs close to each other have similar execution profiles (paper
//! Figs. 8–9), so SeqPoint bins the observed SL range into `k` contiguous,
//! equal-width ranges rather than clustering in profile space.

use serde::{Deserialize, Serialize};

use crate::{CoreError, SlProfile};

/// One contiguous sequence-length bin with its aggregated statistics.
///
/// `lo`/`hi` are the smallest and largest *observed* SLs assigned to the
/// bin's range (the nominal equal-width range may extend further on
/// either side where no SL was observed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Smallest observed SL in the bin.
    pub lo: u32,
    /// Largest observed SL in the bin.
    pub hi: u32,
    /// The unique-SL profiles falling in `[lo, hi]`, ascending.
    pub profiles: Vec<SlProfile>,
}

impl Bin {
    /// Total iterations in the bin — the weight its SeqPoint receives
    /// (Fig. 10, step 4).
    pub fn weight(&self) -> u64 {
        self.profiles.iter().map(|p| p.count).sum()
    }

    /// Iteration-weighted mean statistic of the bin (Fig. 10, step 3's
    /// comparison target).
    pub fn mean_stat(&self) -> f64 {
        let w = self.weight();
        if w == 0 {
            return 0.0;
        }
        self.profiles
            .iter()
            .map(|p| p.mean_stat * p.count as f64)
            .sum::<f64>()
            / w as f64
    }

    /// Whether the bin contains no observed SLs.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Split `profiles` (ascending unique-SL aggregates) into `k` contiguous
/// equal-width SL-range bins spanning `[min_sl, max_sl]`.
///
/// Empty bins (ranges with no observed SL) are dropped — they would have
/// zero weight and no representative. The returned bins are therefore at
/// most `k` and cover every input profile exactly once.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `k == 0`, and
/// [`CoreError::EmptyLog`] if `profiles` is empty.
pub fn bin_profiles(profiles: &[SlProfile], k: u32) -> Result<Vec<Bin>, CoreError> {
    if k == 0 {
        return Err(CoreError::invalid("k", "bin count must be positive"));
    }
    if profiles.is_empty() {
        return Err(CoreError::EmptyLog);
    }
    let min_sl = profiles.first().expect("non-empty").seq_len;
    let max_sl = profiles.last().expect("non-empty").seq_len;
    debug_assert!(profiles.windows(2).all(|w| w[0].seq_len < w[1].seq_len));
    let span = f64::from(max_sl - min_sl) + 1.0;
    let width = span / f64::from(k);
    // Bin i covers the half-open real interval [i·width, (i+1)·width)
    // offset by min_sl. Assign every profile by that rule, then derive
    // each bin's integer bounds from its members — computing nominal
    // integer bounds separately is prone to floating-point disagreements
    // at exact multiples of `width`.
    let mut groups: Vec<Vec<SlProfile>> = vec![Vec::new(); k as usize];
    for p in profiles {
        let idx = (f64::from(p.seq_len - min_sl) / width) as usize;
        groups[idx.min(k as usize - 1)].push(*p);
    }
    let bins: Vec<Bin> = groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| Bin {
            lo: g.first().expect("non-empty").seq_len,
            hi: g.last().expect("non-empty").seq_len,
            profiles: g,
        })
        .collect();
    Ok(bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles(sls: &[(u32, u64, f64)]) -> Vec<SlProfile> {
        sls.iter()
            .map(|&(seq_len, count, mean_stat)| SlProfile {
                seq_len,
                count,
                mean_stat,
            })
            .collect()
    }

    #[test]
    fn bins_cover_all_profiles_once() {
        let p = profiles(&[
            (1, 2, 1.0),
            (10, 1, 2.0),
            (20, 3, 3.0),
            (50, 1, 4.0),
            (100, 2, 5.0),
        ]);
        let bins = bin_profiles(&p, 5).unwrap();
        let total: u64 = bins.iter().map(Bin::weight).sum();
        assert_eq!(total, 9);
        let sls: Vec<u32> = bins
            .iter()
            .flat_map(|b| b.profiles.iter().map(|p| p.seq_len))
            .collect();
        assert_eq!(sls, vec![1, 10, 20, 50, 100]);
    }

    #[test]
    fn bins_are_contiguous_and_ordered() {
        let p = profiles(&[
            (5, 1, 1.0),
            (25, 1, 1.0),
            (45, 1, 1.0),
            (65, 1, 1.0),
            (85, 1, 1.0),
        ]);
        let bins = bin_profiles(&p, 4).unwrap();
        for w in bins.windows(2) {
            assert!(w[0].hi < w[1].lo);
        }
        for b in &bins {
            for prof in &b.profiles {
                assert!(prof.seq_len >= b.lo && prof.seq_len <= b.hi);
            }
        }
    }

    #[test]
    fn empty_ranges_are_dropped() {
        // SLs cluster at the extremes: middle bins are empty.
        let p = profiles(&[(1, 1, 1.0), (2, 1, 1.0), (99, 1, 9.0), (100, 1, 9.0)]);
        let bins = bin_profiles(&p, 10).unwrap();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].weight(), 2);
    }

    #[test]
    fn single_sl_fits_one_bin() {
        let p = profiles(&[(42, 7, 1.5)]);
        let bins = bin_profiles(&p, 5).unwrap();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].lo, 42);
        assert_eq!(bins[0].hi, 42);
        assert_eq!(bins[0].weight(), 7);
    }

    #[test]
    fn weighted_mean_uses_iteration_counts() {
        let p = profiles(&[(1, 3, 1.0), (2, 1, 5.0)]);
        let bins = bin_profiles(&p, 1).unwrap();
        assert!((bins[0].mean_stat() - 2.0).abs() < 1e-12); // (3·1 + 1·5)/4
    }

    #[test]
    fn more_bins_than_sls_degenerates_to_one_bin_per_sl() {
        let p = profiles(&[(10, 1, 1.0), (20, 1, 2.0), (30, 1, 3.0)]);
        let bins = bin_profiles(&p, 100).unwrap();
        assert_eq!(bins.len(), 3);
        for b in &bins {
            assert_eq!(b.profiles.len(), 1);
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let p = profiles(&[(1, 1, 1.0)]);
        assert!(bin_profiles(&p, 0).is_err());
        assert_eq!(bin_profiles(&[], 5), Err(CoreError::EmptyLog));
    }
}
