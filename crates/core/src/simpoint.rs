//! A generic SimPoint-style representative selector.
//!
//! SimPoint (Sherwood et al., ASPLOS'02) — the methodology SeqPoint
//! extends — slices program execution, embeds each slice as a feature
//! vector (basic-block vector), optionally random-projects to a low
//! dimension, clusters with k-means over a range of `k`, picks the best
//! clustering by BIC, and keeps one weighted representative per cluster.
//!
//! This module reproduces that front-end over arbitrary per-iteration
//! feature vectors (e.g. kernel-runtime histograms from the profiler). It
//! powers the Section VII-C comparison showing SL binning matches the
//! sophisticated clustering approach.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::kmeans::{kmeans, KMeansResult};
use crate::CoreError;

/// Options for [`simpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimPointOptions {
    /// Largest `k` tried (the classic tool's `maxK`, default 30).
    pub max_k: usize,
    /// Random-projection dimensionality (default 15, as in the original
    /// tool). Projection is skipped when the data is already narrower.
    pub projected_dim: usize,
    /// PRNG seed for projection and k-means seeding.
    pub seed: u64,
    /// BIC tolerance: the smallest `k` whose BIC reaches this fraction of
    /// the best BIC observed is kept (default 0.9, as in SimPoint).
    pub bic_fraction: f64,
}

impl Default for SimPointOptions {
    fn default() -> Self {
        SimPointOptions {
            max_k: 30,
            projected_dim: 15,
            seed: 0,
            bic_fraction: 0.9,
        }
    }
}

/// The selected representatives: input indices with cluster weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimPointSet {
    /// `(input index, weight)` per kept cluster.
    pub representatives: Vec<(usize, u64)>,
    /// The `k` the BIC criterion settled on.
    pub chosen_k: usize,
}

impl SimPointSet {
    /// Project a total statistic: `Σ weight · stat(index)`.
    pub fn project_total_with(&self, mut stat_of: impl FnMut(usize) -> f64) -> f64 {
        self.representatives
            .iter()
            .map(|&(idx, w)| stat_of(idx) * w as f64)
            .sum()
    }

    /// Sum of weights (= number of input vectors).
    pub fn total_weight(&self) -> u64 {
        self.representatives.iter().map(|&(_, w)| w).sum()
    }
}

/// Run the SimPoint selection over per-iteration feature vectors.
///
/// # Errors
///
/// [`CoreError::EmptyLog`] for empty input;
/// [`CoreError::InvalidParameter`] for zero `max_k`/`projected_dim` or a
/// `bic_fraction` outside `(0, 1]`.
pub fn simpoint(data: &[Vec<f64>], options: SimPointOptions) -> Result<SimPointSet, CoreError> {
    if data.is_empty() {
        return Err(CoreError::EmptyLog);
    }
    if options.max_k == 0 || options.projected_dim == 0 {
        return Err(CoreError::invalid(
            "max_k/projected_dim",
            "must be positive",
        ));
    }
    if !(options.bic_fraction > 0.0 && options.bic_fraction <= 1.0) {
        return Err(CoreError::invalid("bic_fraction", "must be in (0, 1]"));
    }
    let dim = data[0].len();
    if data.iter().any(|v| v.len() != dim) {
        return Err(CoreError::invalid("data", "ragged feature vectors"));
    }

    // Random projection (dimension reduction), as in the original tool.
    let projected: Vec<Vec<f64>> = if dim > options.projected_dim {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let proj: Vec<Vec<f64>> = (0..options.projected_dim)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        data.iter()
            .map(|v| {
                proj.iter()
                    .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
                    .collect()
            })
            .collect()
    } else {
        data.to_vec()
    };

    // Cluster for every k, keep the smallest k within bic_fraction of the
    // best BIC.
    let max_k = options.max_k.min(projected.len());
    let mut results: Vec<(usize, KMeansResult, f64)> = Vec::new();
    for k in 1..=max_k {
        let r = kmeans(&projected, k, options.seed.wrapping_add(k as u64))?;
        let bic = r.bic(&projected);
        results.push((k, r, bic));
    }
    let best_bic = results
        .iter()
        .map(|&(_, _, b)| b)
        .fold(f64::NEG_INFINITY, f64::max);
    // BIC values can be negative; use the classic "within fraction of the
    // span above the worst" rule for robustness.
    let worst_bic = results
        .iter()
        .map(|&(_, _, b)| b)
        .filter(|b| b.is_finite())
        .fold(f64::INFINITY, f64::min);
    let threshold = worst_bic + (best_bic - worst_bic) * options.bic_fraction;
    let chosen = results
        .iter()
        .find(|&&(_, _, b)| b >= threshold)
        .or_else(|| results.last())
        .expect("at least one k was tried");
    let representatives = chosen.1.representatives(&projected);
    Ok(SimPointSet {
        representatives,
        chosen_k: chosen.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, centers: &[f64]) -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for &c in centers {
            for i in 0..n_per {
                data.push(vec![c + (i % 7) as f64 * 0.01, c * 0.5]);
            }
        }
        data
    }

    #[test]
    fn finds_representatives_covering_all_points() {
        let data = blobs(30, &[0.0, 50.0, 100.0]);
        let sp = simpoint(&data, SimPointOptions::default()).unwrap();
        assert_eq!(sp.total_weight() as usize, data.len());
        assert!(!sp.representatives.is_empty());
    }

    #[test]
    fn chosen_k_is_near_the_true_cluster_count() {
        let data = blobs(40, &[0.0, 50.0, 100.0]);
        let sp = simpoint(
            &data,
            SimPointOptions {
                max_k: 10,
                ..SimPointOptions::default()
            },
        )
        .unwrap();
        assert!((2..=5).contains(&sp.chosen_k), "chosen_k = {}", sp.chosen_k);
    }

    #[test]
    fn projection_applies_for_wide_vectors() {
        // 100-dim input with 2 genuine groups.
        let mut data = Vec::new();
        for g in 0..2 {
            for i in 0..25 {
                let mut v = vec![0.0; 100];
                v[g * 50] = 10.0 + (i % 3) as f64 * 0.01;
                data.push(v);
            }
        }
        let sp = simpoint(&data, SimPointOptions::default()).unwrap();
        assert_eq!(sp.total_weight(), 50);
    }

    #[test]
    fn projection_total_matches_exact_for_k_equals_n() {
        let data: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 10.0]).collect();
        let sp = simpoint(
            &data,
            SimPointOptions {
                max_k: 6,
                bic_fraction: 1.0,
                ..SimPointOptions::default()
            },
        )
        .unwrap();
        let stats: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let projected = sp.project_total_with(|i| stats[i]);
        assert!(projected >= 0.0);
        assert_eq!(sp.total_weight(), 6);
    }

    #[test]
    fn rejects_invalid_options() {
        let data = vec![vec![1.0], vec![2.0]];
        assert!(simpoint(&[], SimPointOptions::default()).is_err());
        assert!(simpoint(
            &data,
            SimPointOptions {
                max_k: 0,
                ..SimPointOptions::default()
            }
        )
        .is_err());
        assert!(simpoint(
            &data,
            SimPointOptions {
                bic_fraction: 0.0,
                ..SimPointOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs(20, &[0.0, 10.0]);
        let opts = SimPointOptions::default();
        assert_eq!(
            simpoint(&data, opts).unwrap(),
            simpoint(&data, opts).unwrap()
        );
    }
}
