//! Multi-statistic epoch logs.
//!
//! The paper identifies SeqPoints from a *single* statistic (runtime)
//! and notes the methodology "can use any other statistic (or collection
//! of statistics) that varies with SL" (Section V-C), with runtime being
//! "a good enough proxy of the program execution behavior"
//! (Section VII-C). This module makes that checkable: log several
//! statistics per iteration, identify SeqPoints from one *primary*
//! statistic, and measure how well those same SeqPoints project every
//! other statistic.

use serde::{Deserialize, Serialize};

use crate::{CoreError, EpochLog, SeqPointConfig, SeqPointPipeline, SeqPointSet};

/// A per-iteration log carrying several named statistics.
///
/// ```
/// use seqpoint_core::multi::MultiStatLog;
///
/// # fn main() -> Result<(), seqpoint_core::CoreError> {
/// let mut log = MultiStatLog::new(["runtime", "dram_bytes"])?;
/// for i in 0..100u32 {
///     let sl = 10 + i % 40;
///     log.push(sl, [f64::from(sl) * 0.01, f64::from(sl) * 2e6])?;
/// }
/// let analysis = log.analyze_with_primary(0, Default::default())?;
/// assert!(analysis.secondary_error_pct("dram_bytes").unwrap() < 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiStatLog {
    names: Vec<String>,
    records: Vec<(u32, Vec<f64>)>,
}

impl MultiStatLog {
    /// Create a log for the given statistic names.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if no names are given or names
    /// repeat.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Result<Self, CoreError> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.is_empty() {
            return Err(CoreError::invalid("names", "need at least one statistic"));
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != names.len() {
            return Err(CoreError::invalid(
                "names",
                "statistic names must be unique",
            ));
        }
        Ok(MultiStatLog {
            names,
            records: Vec::new(),
        })
    }

    /// Append one iteration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if the value count does not match
    /// the statistic count.
    pub fn push(
        &mut self,
        seq_len: u32,
        stats: impl IntoIterator<Item = f64>,
    ) -> Result<(), CoreError> {
        let stats: Vec<f64> = stats.into_iter().collect();
        if stats.len() != self.names.len() {
            return Err(CoreError::invalid(
                "stats",
                format!("expected {} values, got {}", self.names.len(), stats.len()),
            ));
        }
        self.records.push((seq_len, stats));
        Ok(())
    }

    /// The statistic names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of iterations logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no iterations have been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Column index of a statistic name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Extract one statistic as a single-stat [`EpochLog`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for an out-of-range index.
    pub fn log_of(&self, stat: usize) -> Result<EpochLog, CoreError> {
        if stat >= self.names.len() {
            return Err(CoreError::invalid("stat", "index out of range"));
        }
        Ok(EpochLog::from_pairs(
            self.records.iter().map(|(sl, v)| (*sl, v[stat])),
        ))
    }

    /// Identify SeqPoints from the `primary` statistic and evaluate the
    /// projection error of *every* statistic with those SeqPoints.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors and rejects out-of-range indices.
    pub fn analyze_with_primary(
        &self,
        primary: usize,
        config: SeqPointConfig,
    ) -> Result<MultiStatAnalysis, CoreError> {
        let primary_log = self.log_of(primary)?;
        let analysis = SeqPointPipeline::with_config(config).run(&primary_log)?;
        let set = analysis.seqpoints().clone();
        let mut errors = Vec::with_capacity(self.names.len());
        for stat in 0..self.names.len() {
            let log = self.log_of(stat)?;
            let actual = log.actual_total();
            let predicted = set.project_total_with(|sl| {
                log.mean_stat_of(sl)
                    .expect("SeqPoint SLs come from this log")
            });
            let err = if actual == 0.0 {
                0.0
            } else {
                ((predicted - actual) / actual).abs() * 100.0
            };
            errors.push((self.names[stat].clone(), err));
        }
        Ok(MultiStatAnalysis {
            primary: self.names[primary].clone(),
            seqpoints: set,
            errors,
        })
    }
}

/// Result of [`MultiStatLog::analyze_with_primary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiStatAnalysis {
    primary: String,
    seqpoints: SeqPointSet,
    errors: Vec<(String, f64)>,
}

impl MultiStatAnalysis {
    /// The statistic SeqPoints were identified from.
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// The identified SeqPoints.
    pub fn seqpoints(&self) -> &SeqPointSet {
        &self.seqpoints
    }

    /// `(name, projection error %)` for every statistic.
    pub fn errors(&self) -> &[(String, f64)] {
        &self.errors
    }

    /// Projection error of a secondary statistic, by name.
    pub fn secondary_error_pct(&self, name: &str) -> Option<f64> {
        self.errors.iter().find(|(n, _)| n == name).map(|&(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> MultiStatLog {
        let mut log = MultiStatLog::new(["runtime", "valu", "dram"]).unwrap();
        for i in 0..400u32 {
            let sl = 5 + (i * 7) % 120;
            let f = f64::from(sl);
            log.push(sl, [0.1 + f * 0.01, f * 1e9, 1e8 + f * 4e7])
                .unwrap();
        }
        log
    }

    #[test]
    fn runtime_chosen_seqpoints_project_other_stats() {
        // Section VII-C's claim: runtime is a good proxy for the whole
        // execution profile.
        let analysis = log()
            .analyze_with_primary(0, SeqPointConfig::default())
            .unwrap();
        assert_eq!(analysis.primary(), "runtime");
        for (name, err) in analysis.errors() {
            assert!(*err < 3.0, "{name}: {err}%");
        }
    }

    #[test]
    fn column_extraction_round_trips() {
        let log = log();
        let runtime = log.log_of(0).unwrap();
        assert_eq!(runtime.len(), 400);
        assert_eq!(log.index_of("dram"), Some(2));
        assert!(log.index_of("nope").is_none());
        assert!(log.log_of(9).is_err());
    }

    #[test]
    fn construction_validates_names_and_rows() {
        assert!(MultiStatLog::new(Vec::<String>::new()).is_err());
        assert!(MultiStatLog::new(["a", "a"]).is_err());
        let mut l = MultiStatLog::new(["a", "b"]).unwrap();
        assert!(l.push(3, [1.0]).is_err());
        assert!(l.push(3, [1.0, 2.0]).is_ok());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn secondary_error_lookup() {
        let analysis = log()
            .analyze_with_primary(0, SeqPointConfig::default())
            .unwrap();
        assert!(analysis.secondary_error_pct("valu").is_some());
        assert!(analysis.secondary_error_pct("nope").is_none());
        assert!(!analysis.seqpoints().is_empty());
    }
}
