use std::error::Error;
use std::fmt;

/// Errors produced by the SeqPoint pipeline and clustering utilities.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The epoch log contains no iterations.
    EmptyLog,
    /// A pipeline or clustering parameter was invalid.
    InvalidParameter {
        /// The offending parameter name.
        parameter: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The refinement loop hit `max_k` without meeting the error
    /// threshold; the best analysis found is embedded so callers can
    /// still use it.
    ThresholdNotMet {
        /// The error (percent) achieved at `max_k`.
        achieved_error_pct: f64,
        /// The configured threshold (percent).
        threshold_pct: f64,
    },
}

impl CoreError {
    pub(crate) fn invalid(parameter: &'static str, reason: impl Into<String>) -> Self {
        CoreError::InvalidParameter {
            parameter,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyLog => write!(f, "epoch log contains no iterations"),
            CoreError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid parameter `{parameter}`: {reason}")
            }
            CoreError::ThresholdNotMet {
                achieved_error_pct,
                threshold_pct,
            } => write!(
                f,
                "error threshold not met: achieved {achieved_error_pct:.3}% > {threshold_pct:.3}% at max_k"
            ),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CoreError::EmptyLog.to_string().contains("no iterations"));
        assert!(CoreError::invalid("k", "zero").to_string().contains("`k`"));
        let e = CoreError::ThresholdNotMet {
            achieved_error_pct: 5.0,
            threshold_pct: 1.0,
        };
        assert!(e.to_string().contains("5.000%"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
