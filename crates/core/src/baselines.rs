//! The alternative iteration selectors the paper compares against
//! (Section VI-C):
//!
//! * **Frequent** — the single most frequently occurring SL (most likely
//!   random pick).
//! * **Median** — the iteration with the median SL.
//! * **Worst** — the single SL with the worst-case projection error (a
//!   bound on arbitrary single-iteration selection).
//! * **Prior** — the sampling approach of Zhu et al. (IISWC'18): a window
//!   of contiguous iterations after a fixed warmup, averaged and scaled.
//!
//! All baselines project a whole-epoch statistic as *average selected
//! statistic × iterations per epoch* — the paper's projection rule for
//! single-iteration proxies.

use serde::{Deserialize, Serialize};

use crate::{CoreError, EpochLog};

/// Which baseline selector to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BaselineKind {
    /// The most frequently occurring sequence length.
    Frequent,
    /// The median sequence length (over iterations).
    Median,
    /// The single SL with the worst projection error (error bound).
    Worst,
    /// `window` contiguous iterations after `warmup` iterations.
    Prior {
        /// Iterations skipped before sampling (framework warm-up).
        warmup: usize,
        /// Number of contiguous iterations sampled (50 in the paper).
        window: usize,
    },
}

impl BaselineKind {
    /// The paper's `prior` configuration: 50 iterations after warmup.
    pub fn prior_default() -> Self {
        BaselineKind::Prior {
            warmup: 10,
            window: 50,
        }
    }

    /// Short label used in result tables (matches the paper's figures).
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::Frequent => "frequent",
            BaselineKind::Median => "median",
            BaselineKind::Worst => "worst",
            BaselineKind::Prior { .. } => "prior",
        }
    }

    /// All evaluation baselines in the paper's figure order.
    pub fn paper_set() -> Vec<BaselineKind> {
        vec![
            BaselineKind::Worst,
            BaselineKind::Frequent,
            BaselineKind::Median,
            BaselineKind::prior_default(),
        ]
    }

    /// Select iterations from `log` according to this baseline.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyLog`] if the log is empty, or
    /// [`CoreError::InvalidParameter`] for a zero `Prior` window.
    pub fn select(&self, log: &EpochLog) -> Result<BaselineSelection, CoreError> {
        if log.is_empty() {
            return Err(CoreError::EmptyLog);
        }
        let iterations = log.len();
        match *self {
            BaselineKind::Frequent => {
                let profiles = log.sl_profiles();
                let best = profiles
                    .iter()
                    .max_by(|a, b| a.count.cmp(&b.count).then(b.seq_len.cmp(&a.seq_len)))
                    .expect("non-empty");
                Ok(BaselineSelection {
                    kind: *self,
                    seq_lens: vec![best.seq_len],
                    iterations,
                })
            }
            BaselineKind::Median => {
                let mut sls: Vec<u32> = log.records().iter().map(|r| r.seq_len).collect();
                sls.sort_unstable();
                Ok(BaselineSelection {
                    kind: *self,
                    seq_lens: vec![sls[sls.len() / 2]],
                    iterations,
                })
            }
            BaselineKind::Worst => {
                let actual = log.actual_total();
                let worst = log
                    .sl_profiles()
                    .iter()
                    .max_by(|a, b| {
                        let ea = (a.mean_stat * iterations as f64 - actual).abs();
                        let eb = (b.mean_stat * iterations as f64 - actual).abs();
                        ea.total_cmp(&eb)
                    })
                    .map(|p| p.seq_len)
                    .expect("non-empty");
                Ok(BaselineSelection {
                    kind: *self,
                    seq_lens: vec![worst],
                    iterations,
                })
            }
            BaselineKind::Prior { warmup, window } => {
                if window == 0 {
                    return Err(CoreError::invalid("window", "must be positive"));
                }
                // Clamp the window into the log: skip the warmup if it
                // fits, then take up to `window` iterations.
                let start = warmup.min(iterations.saturating_sub(1));
                let end = (start + window).min(iterations);
                let seq_lens = log.records()[start..end]
                    .iter()
                    .map(|r| r.seq_len)
                    .collect();
                Ok(BaselineSelection {
                    kind: *self,
                    seq_lens,
                    iterations,
                })
            }
        }
    }
}

impl std::fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The iterations a baseline picked, with its projection rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineSelection {
    kind: BaselineKind,
    seq_lens: Vec<u32>,
    iterations: usize,
}

impl BaselineSelection {
    /// Which baseline produced this selection.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// The selected sequence lengths, with multiplicity, in log order
    /// (one entry for single-iteration baselines; `window` entries for
    /// `Prior`).
    pub fn seq_lens(&self) -> &[u32] {
        &self.seq_lens
    }

    /// The distinct sequence lengths that must be re-profiled on a new
    /// configuration.
    pub fn unique_seq_lens(&self) -> Vec<u32> {
        let mut v = self.seq_lens.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterations in the profiled epoch (the projection scale factor).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Project the whole-epoch total: mean selected statistic ×
    /// iterations. `stat_of` supplies the (re-)measured statistic per SL.
    pub fn project_total_with(&self, mut stat_of: impl FnMut(u32) -> f64) -> f64 {
        if self.seq_lens.is_empty() {
            return 0.0;
        }
        let mean =
            self.seq_lens.iter().map(|&sl| stat_of(sl)).sum::<f64>() / self.seq_lens.len() as f64;
        mean * self.iterations as f64
    }

    /// Project a ratio statistic: the plain mean over selected iterations.
    pub fn project_ratio_with(&self, mut stat_of: impl FnMut(u32) -> f64) -> f64 {
        if self.seq_lens.is_empty() {
            return 0.0;
        }
        self.seq_lens.iter().map(|&sl| stat_of(sl)).sum::<f64>() / self.seq_lens.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> EpochLog {
        // SLs: 10 ×4, 20 ×2, 30 ×1; stats = SL/10.
        EpochLog::from_pairs([
            (10, 1.0),
            (20, 2.0),
            (10, 1.0),
            (30, 3.0),
            (10, 1.0),
            (20, 2.0),
            (10, 1.0),
        ])
    }

    #[test]
    fn frequent_picks_the_modal_sl() {
        let s = BaselineKind::Frequent.select(&log()).unwrap();
        assert_eq!(s.seq_lens(), &[10]);
    }

    #[test]
    fn median_picks_the_middle_iteration_sl() {
        let s = BaselineKind::Median.select(&log()).unwrap();
        // Sorted SLs: 10,10,10,10,20,20,30 → median 10.
        assert_eq!(s.seq_lens(), &[10]);
        let balanced = EpochLog::from_pairs([(1, 0.1), (2, 0.2), (3, 0.3)]);
        let s = BaselineKind::Median.select(&balanced).unwrap();
        assert_eq!(s.seq_lens(), &[2]);
    }

    #[test]
    fn worst_maximizes_projection_error() {
        let l = log();
        let s = BaselineKind::Worst.select(&l).unwrap();
        // Actual = 11.0; candidates: 10→7.0 (err 4), 20→14 (err 3),
        // 30→21 (err 10). Worst = 30.
        assert_eq!(s.seq_lens(), &[30]);
        let pred = s.project_total_with(|sl| l.mean_stat_of(sl).unwrap());
        assert!((pred - 21.0).abs() < 1e-12);
    }

    #[test]
    fn prior_takes_a_contiguous_window() {
        let l = log();
        let s = BaselineKind::Prior {
            warmup: 2,
            window: 3,
        }
        .select(&l)
        .unwrap();
        assert_eq!(s.seq_lens(), &[10, 30, 10]); // records 2..5
        let pred = s.project_total_with(|sl| l.mean_stat_of(sl).unwrap());
        // Mean(1,3,1) × 7 = 11.666…
        assert!((pred - 35.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn prior_window_clamps_to_log_end() {
        let l = log();
        let s = BaselineKind::Prior {
            warmup: 5,
            window: 50,
        }
        .select(&l)
        .unwrap();
        assert_eq!(s.seq_lens().len(), 2);
        // Degenerate: warmup beyond the log falls back to the tail.
        let s = BaselineKind::Prior {
            warmup: 100,
            window: 2,
        }
        .select(&l)
        .unwrap();
        assert_eq!(s.seq_lens().len(), 1);
    }

    #[test]
    fn single_iteration_projection_rule() {
        let l = log();
        let s = BaselineKind::Frequent.select(&l).unwrap();
        let pred = s.project_total_with(|sl| l.mean_stat_of(sl).unwrap());
        assert!((pred - 7.0).abs() < 1e-12); // 1.0 × 7 iterations
        let ratio = s.project_ratio_with(|_| 42.0);
        assert!((ratio - 42.0).abs() < 1e-12);
    }

    #[test]
    fn errors_on_empty_or_invalid() {
        assert_eq!(
            BaselineKind::Frequent.select(&EpochLog::new()),
            Err(CoreError::EmptyLog)
        );
        assert!(BaselineKind::Prior {
            warmup: 0,
            window: 0
        }
        .select(&log())
        .is_err());
    }

    #[test]
    fn paper_set_has_four_baselines() {
        let set = BaselineKind::paper_set();
        assert_eq!(set.len(), 4);
        let labels: Vec<&str> = set.iter().map(|b| b.label()).collect();
        assert_eq!(labels, vec!["worst", "frequent", "median", "prior"]);
    }

    #[test]
    fn unique_seq_lens_dedupes() {
        let l = log();
        let s = BaselineKind::Prior {
            warmup: 0,
            window: 7,
        }
        .select(&l)
        .unwrap();
        assert_eq!(s.unique_seq_lens(), vec![10, 20, 30]);
    }
}
