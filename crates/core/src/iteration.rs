use serde::{Deserialize, Serialize};

/// One training iteration as SeqPoint sees it: the padded batch sequence
/// length and one scalar statistic (by default the iteration runtime in
/// seconds, though any statistic that varies with SL works — Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// The iteration's padded sequence length.
    pub seq_len: u32,
    /// The observed statistic (e.g. runtime in seconds).
    pub stat: f64,
}

/// Aggregated view of all iterations sharing one unique sequence length.
///
/// Per the paper's key observation 4, iterations with the same SL behave
/// alike, so their mean statistic characterizes the SL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlProfile {
    /// The unique sequence length.
    pub seq_len: u32,
    /// Number of iterations observed at this SL (the SeqPoint weight in
    /// the unbinned case).
    pub count: u64,
    /// Mean statistic across those iterations.
    pub mean_stat: f64,
}

/// The per-iteration log of one profiled training epoch.
///
/// This is the sole input the SeqPoint methodology needs (paper Fig. 10,
/// step 1): no simulation, tracing, or model knowledge — just `(SL, stat)`
/// per iteration.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpochLog {
    records: Vec<IterationRecord>,
}

impl EpochLog {
    /// Create an empty log.
    pub fn new() -> Self {
        EpochLog::default()
    }

    /// Build a log from `(seq_len, stat)` pairs in iteration order.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, f64)>) -> Self {
        EpochLog {
            records: pairs
                .into_iter()
                .map(|(seq_len, stat)| IterationRecord { seq_len, stat })
                .collect(),
        }
    }

    /// Append one iteration (in execution order — the `Prior` baseline
    /// depends on it).
    pub fn push(&mut self, seq_len: u32, stat: f64) {
        self.records.push(IterationRecord { seq_len, stat });
    }

    /// The raw records in execution order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The measured whole-epoch total of the statistic (the ground truth
    /// every projection is scored against).
    pub fn actual_total(&self) -> f64 {
        self.records.iter().map(|r| r.stat).sum()
    }

    /// Mean statistic per iteration.
    pub fn mean_stat(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.actual_total() / self.records.len() as f64
    }

    /// Aggregate the log per unique sequence length, ascending by SL.
    pub fn sl_profiles(&self) -> Vec<SlProfile> {
        let mut sorted: Vec<(u32, f64)> =
            self.records.iter().map(|r| (r.seq_len, r.stat)).collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut out: Vec<SlProfile> = Vec::new();
        for (sl, stat) in sorted {
            match out.last_mut() {
                Some(p) if p.seq_len == sl => {
                    p.count += 1;
                    p.mean_stat += (stat - p.mean_stat) / p.count as f64;
                }
                _ => out.push(SlProfile {
                    seq_len: sl,
                    count: 1,
                    mean_stat: stat,
                }),
            }
        }
        out
    }

    /// Number of distinct sequence lengths in the log.
    pub fn unique_sl_count(&self) -> usize {
        self.sl_profiles().len()
    }

    /// The mean statistic of a specific sequence length, if present.
    pub fn mean_stat_of(&self, seq_len: u32) -> Option<f64> {
        let (mut n, mut sum) = (0u64, 0.0);
        for r in &self.records {
            if r.seq_len == seq_len {
                n += 1;
                sum += r.stat;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }
}

impl FromIterator<(u32, f64)> for EpochLog {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        EpochLog::from_pairs(iter)
    }
}

impl Extend<(u32, f64)> for EpochLog {
    fn extend<T: IntoIterator<Item = (u32, f64)>>(&mut self, iter: T) {
        for (sl, stat) in iter {
            self.push(sl, stat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> EpochLog {
        EpochLog::from_pairs([(5, 1.0), (3, 0.5), (5, 2.0), (8, 3.0), (3, 0.7)])
    }

    #[test]
    fn totals_and_means() {
        let l = log();
        assert_eq!(l.len(), 5);
        assert!((l.actual_total() - 7.2).abs() < 1e-12);
        assert!((l.mean_stat() - 1.44).abs() < 1e-12);
    }

    #[test]
    fn profiles_are_sorted_and_aggregated() {
        let p = log().sl_profiles();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].seq_len, 3);
        assert_eq!(p[0].count, 2);
        assert!((p[0].mean_stat - 0.6).abs() < 1e-12);
        assert_eq!(p[1].seq_len, 5);
        assert!((p[1].mean_stat - 1.5).abs() < 1e-12);
        assert_eq!(p[2].seq_len, 8);
        assert_eq!(p[2].count, 1);
    }

    #[test]
    fn counts_sum_to_iterations() {
        let l = log();
        let total: u64 = l.sl_profiles().iter().map(|p| p.count).sum();
        assert_eq!(total as usize, l.len());
    }

    #[test]
    fn mean_stat_of_specific_sl() {
        let l = log();
        assert_eq!(l.mean_stat_of(5), Some(1.5));
        assert_eq!(l.mean_stat_of(99), None);
    }

    #[test]
    fn empty_log_edge_cases() {
        let l = EpochLog::new();
        assert!(l.is_empty());
        assert_eq!(l.actual_total(), 0.0);
        assert_eq!(l.mean_stat(), 0.0);
        assert!(l.sl_profiles().is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut l: EpochLog = [(1u32, 1.0)].into_iter().collect();
        l.extend([(2, 2.0), (3, 3.0)]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.records()[2].seq_len, 3);
    }
}
