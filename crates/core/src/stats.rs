//! Small statistics helpers shared by the pipeline, the experiments, and
//! the benchmark harness (geomean error reporting, relative errors).

/// Relative error of `predicted` against `actual`, in percent
/// (`|p − a| / |a| · 100`). Returns 0 when both are 0, and infinity when
/// only `actual` is 0.
pub fn relative_error_pct(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return if predicted == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((predicted - actual) / actual).abs() * 100.0
}

/// Geometric mean of a set of positive values, the paper's summary metric
/// for per-configuration errors. Non-positive values are clamped to a
/// small epsilon first (a 0.00% error would otherwise zero the geomean).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    const EPS: f64 = 1e-6;
    let (mut log_sum, mut n) = (0.0, 0usize);
    for v in values {
        log_sum += v.max(EPS).ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

/// Arithmetic mean (0 for an empty input).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    sum / n as f64
}

/// Population coefficient of variation (stddev / mean) of the values,
/// in percent. Used by the Fig. 3 homogeneity comparison.
pub fn coefficient_of_variation_pct(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values.iter().copied());
    if m == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt() / m.abs() * 100.0
}

/// Max-to-min spread of the values, in percent (`(max/min − 1)·100`).
/// The paper quotes Fig. 4 swings this way (e.g. "differ by about 24%").
pub fn spread_pct(values: &[f64]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() || min <= 0.0 {
        return 0.0;
    }
    (max / min - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert!((relative_error_pct(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!((relative_error_pct(90.0, 100.0) - 10.0).abs() < 1e-9);
        assert_eq!(relative_error_pct(0.0, 0.0), 0.0);
        assert!(relative_error_pct(1.0, 0.0).is_infinite());
    }

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = geomean([1.0, 4.0, 16.0]);
        assert!((g - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_handles_zeros_and_empty() {
        assert!(geomean([0.0, 1.0]) > 0.0);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn cv_of_constant_series_is_zero() {
        assert_eq!(coefficient_of_variation_pct(&[3.0, 3.0, 3.0]), 0.0);
        assert!(coefficient_of_variation_pct(&[1.0, 2.0, 3.0]) > 0.0);
        assert_eq!(coefficient_of_variation_pct(&[]), 0.0);
    }

    #[test]
    fn spread_matches_max_over_min() {
        assert!((spread_pct(&[1.0, 1.24]) - 24.0).abs() < 1e-9);
        assert_eq!(spread_pct(&[]), 0.0);
        assert_eq!(spread_pct(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }
}
