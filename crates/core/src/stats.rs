//! Small statistics helpers shared by the pipeline, the experiments, and
//! the benchmark harness (geomean error reporting, relative errors), plus
//! the [`CompensatedSum`] accumulator the streaming trackers use to make
//! sharded merges agree with sequential summation.

use serde::{Deserialize, Serialize};

/// A Neumaier-compensated floating-point sum.
///
/// Plain `f64 +=` accumulation makes the result depend on summation
/// order at the last-ulp level, so a sharded merge and a sequential scan
/// of the same stream disagree. Compensation tracks the rounding error of
/// every addition in a second term, so [`CompensatedSum::value`] is the
/// exact sum evaluated in (effectively) doubled precision — order-
/// independent in practice, which is what lets the sharded==unsharded
/// streaming property tests assert bit-exact statistic equality.
///
/// The compensation term is part of the carried state: it survives
/// [`CompensatedSum::merge`] and (de)serialization, so a
/// checkpoint/restore cycle resumes with the identical accumulator.
///
/// ```
/// use seqpoint_core::stats::CompensatedSum;
///
/// let mut naive = 0.0f64;
/// let mut compensated = CompensatedSum::new();
/// for _ in 0..10_000 {
///     naive += 0.1;
///     compensated.add(0.1);
/// }
/// assert!((compensated.value() - 1000.0).abs() <= (naive - 1000.0).abs());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    /// An empty (zero) sum.
    pub fn new() -> Self {
        CompensatedSum::default()
    }

    /// Add one value (Neumaier's variant of Kahan summation: the
    /// compensation also absorbs the error when the addend dominates the
    /// running sum).
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        // An overflowed (or NaN) total has no meaningful rounding error;
        // updating the compensation would turn it into `inf - inf` = NaN.
        if t.is_finite() {
            if self.sum.abs() >= x.abs() {
                self.compensation += (self.sum - t) + x;
            } else {
                self.compensation += (x - t) + self.sum;
            }
        }
        self.sum = t;
    }

    /// Add `x · n` as if `x` had been [`CompensatedSum::add`]ed `n`
    /// times, in O(1): the product is split into its rounded value and
    /// exact residual (via fused multiply-add), and both are added with
    /// compensation.
    pub fn add_scaled(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        if n == 1 {
            self.add(x);
            return;
        }
        let scale = n as f64;
        let product = x * scale;
        if product.is_finite() {
            let residual = x.mul_add(scale, -product);
            self.add(product);
            self.add(residual);
        } else {
            self.add(product);
        }
    }

    /// Absorb another compensated sum, carrying its compensation term
    /// through rather than collapsing it first.
    pub fn merge(&mut self, other: CompensatedSum) {
        self.add(other.sum);
        self.add(other.compensation);
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Relative error of `predicted` against `actual`, in percent
/// (`|p − a| / |a| · 100`). Returns 0 when both are 0, and infinity when
/// only `actual` is 0.
pub fn relative_error_pct(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return if predicted == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((predicted - actual) / actual).abs() * 100.0
}

/// Geometric mean of a set of positive values, the paper's summary metric
/// for per-configuration errors. Non-positive values are clamped to a
/// small epsilon first (a 0.00% error would otherwise zero the geomean).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    const EPS: f64 = 1e-6;
    let (mut log_sum, mut n) = (0.0, 0usize);
    for v in values {
        log_sum += v.max(EPS).ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

/// Arithmetic mean (0 for an empty input).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    sum / n as f64
}

/// Population coefficient of variation (stddev / mean) of the values,
/// in percent. Used by the Fig. 3 homogeneity comparison.
pub fn coefficient_of_variation_pct(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values.iter().copied());
    if m == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt() / m.abs() * 100.0
}

/// Max-to-min spread of the values, in percent (`(max/min − 1)·100`).
/// The paper quotes Fig. 4 swings this way (e.g. "differ by about 24%").
pub fn spread_pct(values: &[f64]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() || min <= 0.0 {
        return 0.0;
    }
    (max / min - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert!((relative_error_pct(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!((relative_error_pct(90.0, 100.0) - 10.0).abs() < 1e-9);
        assert_eq!(relative_error_pct(0.0, 0.0), 0.0);
        assert!(relative_error_pct(1.0, 0.0).is_infinite());
    }

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = geomean([1.0, 4.0, 16.0]);
        assert!((g - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_handles_zeros_and_empty() {
        assert!(geomean([0.0, 1.0]) > 0.0);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn cv_of_constant_series_is_zero() {
        assert_eq!(coefficient_of_variation_pct(&[3.0, 3.0, 3.0]), 0.0);
        assert!(coefficient_of_variation_pct(&[1.0, 2.0, 3.0]) > 0.0);
        assert_eq!(coefficient_of_variation_pct(&[]), 0.0);
    }

    #[test]
    fn spread_matches_max_over_min() {
        assert!((spread_pct(&[1.0, 1.24]) - 24.0).abs() < 1e-9);
        assert_eq!(spread_pct(&[]), 0.0);
        assert_eq!(spread_pct(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn compensated_sum_beats_naive_accumulation() {
        // (1 + ε) added 1e6 times: naive summation absorbs every ε once
        // the running sum passes 2/ε; compensation keeps them all.
        let addend = 1.0 + f64::EPSILON;
        let mut naive = 0.0f64;
        let mut c = CompensatedSum::new();
        for _ in 0..1_000_000 {
            naive += addend;
            c.add(addend);
        }
        // The exact sum is the real product 1e6 · (1 + ε), so the
        // correctly rounded product is the compensated result.
        let exact = 1_000_000.0 * addend;
        assert_eq!(c.value().to_bits(), exact.to_bits(), "{}", c.value());
        assert!((naive - exact).abs() > (c.value() - exact).abs());
    }

    #[test]
    fn compensated_merge_matches_sequential_bits() {
        // Split an adversarial stream across 7 shards, merge, and demand
        // bit equality with the sequential scan.
        let values: Vec<f64> = (0..5_000)
            .map(|i| 0.1 + (i % 97) as f64 * 1e-3 + (i % 13) as f64 * 1e17)
            .collect();
        let mut sequential = CompensatedSum::new();
        for &v in &values {
            sequential.add(v);
        }
        let mut shards = vec![CompensatedSum::new(); 7];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 7].add(v);
        }
        let mut merged = CompensatedSum::new();
        for shard in &shards {
            merged.merge(*shard);
        }
        assert_eq!(merged.value().to_bits(), sequential.value().to_bits());
    }

    #[test]
    fn add_scaled_matches_repeated_add() {
        let mut bulk = CompensatedSum::new();
        bulk.add_scaled(0.3, 1_000);
        bulk.add_scaled(0.3, 0); // no-op
        let mut single = CompensatedSum::new();
        for _ in 0..1_000 {
            single.add(0.3);
        }
        assert_eq!(bulk.value().to_bits(), single.value().to_bits());
    }

    #[test]
    fn compensated_sum_handles_non_finite_inputs() {
        let mut c = CompensatedSum::new();
        c.add_scaled(f64::MAX, u64::MAX); // overflows to infinity
        assert!(c.value().is_infinite());
    }
}
