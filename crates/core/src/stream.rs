//! Streaming, sharded SeqPoint selection.
//!
//! [`crate::online`] tracks one shard's sequence-length space; this
//! module scales that to a production-shaped ingestion path. The
//! iteration stream arrives in **rounds** (fixed-size contiguous blocks),
//! each round is dealt round-robin across worker shards, and the
//! per-shard [`OnlineSlTracker`] states are merged after every round.
//!
//! The cost model mirrors the paper's: an iteration's *sequence length*
//! is free (it is batch-shape metadata from the data pipeline), but its
//! *statistic* — runtime, counters — requires actually profiling the
//! iteration. Ingestion therefore runs in two phases:
//!
//! 1. **Measure** — every iteration is profiled and observed, until the
//!    SL space **saturates**: at least a full window ingested, and either
//!    no new SL within the window or a Good–Turing unseen-SL probability
//!    at or below the configured threshold.
//! 2. **Replay** — for the remaining stream only the (free) shape
//!    metadata is consumed: iterations whose shape was already profiled
//!    are *replayed* against the recorded statistic without re-executing
//!    anything (the paper's key observation 4 — identical shapes behave
//!    identically), and a genuinely new shape is measured on demand.
//!
//! Both counts and per-SL statistic sums therefore stay exact for the
//! whole epoch, so the selection the merged state feeds into
//! [`crate::SeqPointPipeline::run_profiles`] matches the full-epoch path
//! while only a fraction of the iterations were ever executed — and the
//! full per-iteration epoch log is never materialized: selection runs on
//! the per-SL aggregates the trackers already hold.
//!
//! The phase-1 stop decision depends only on the stream prefix and the
//! round boundaries — never on the shard count — so sharded and
//! unsharded runs select the same SeqPoints ([`select_streaming`]'s key
//! invariant, enforced by the workspace property tests).

use serde::{Deserialize, Serialize};

use crate::online::OnlineSlTracker;
use crate::{CoreError, EpochLog, SeqPointAnalysis, SeqPointConfig, SeqPointPipeline, SeqPointSet};

/// Thresholds of the streaming early-stop rule, plus the pipeline
/// configuration applied to the streamed counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Measurement may only stop once at least this many iterations have
    /// been ingested, and (for the no-new-SL criterion) no new SL
    /// appeared within this many iterations.
    pub saturation_window: u64,
    /// Good–Turing ceiling: measurement may also stop while the
    /// estimated probability of the next iteration showing an unseen SL
    /// is at most this. Long-tailed SL spaces rarely go a full window
    /// without a new singleton, so this is the criterion that fires on
    /// realistic corpora; new SLs appearing after the stop are still
    /// measured on demand.
    pub unseen_threshold: f64,
    /// SL granularity of the novelty tracking behind the stop rule:
    /// SLs are bucketed into ranges of this width (1 = exact SLs). The
    /// paper's Fig. 8 observation — close SLs have near-identical
    /// execution profiles — means a fresh SL right next to a measured
    /// one is not real novelty; wide-SL-space workloads (LibriSpeech
    /// spans ~50–450) saturate at bucket granularity long before every
    /// individual SL has been seen. Statistics stay exact per SL
    /// regardless: this only decides when measurement may stop.
    pub quantization: u32,
    /// Thresholds for the selection pipeline run on the streamed counts.
    pub pipeline: SeqPointConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            saturation_window: 256,
            unseen_threshold: 0.05,
            quantization: 1,
            pipeline: SeqPointConfig::default(),
        }
    }
}

/// Merges per-shard tracker state round by round, decides when the SL
/// space has saturated, and absorbs the replayed remainder of the
/// stream.
///
/// ```
/// use seqpoint_core::online::OnlineSlTracker;
/// use seqpoint_core::stream::{StreamConfig, StreamingSelector};
///
/// let mut selector = StreamingSelector::with_config(StreamConfig {
///     saturation_window: 8,
///     ..StreamConfig::default()
/// });
/// // Each round: merge whatever the worker shards measured.
/// while !selector.should_stop() {
///     let mut shard = OnlineSlTracker::new();
///     for sl in [10, 20, 30, 20] {
///         shard.observe(sl, 0.1);
///     }
///     selector.ingest_round(&shard);
/// }
/// // 3 SLs, closed space: measurement stops; the rest of the epoch is
/// // replayed against already-recorded statistics, execution-free.
/// assert!(selector.tracker().contains(20));
/// selector.observe_replayed(20, 0.1);
/// assert_eq!(selector.iterations_seen(), selector.iterations_measured() + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingSelector {
    config: StreamConfig,
    measured: OnlineSlTracker,
    replayed: OnlineSlTracker,
    novelty: OnlineSlTracker,
    last_new_at: u64,
    rounds: u32,
    stopped_at: Option<u64>,
}

impl Default for StreamingSelector {
    fn default() -> Self {
        StreamingSelector::with_config(StreamConfig::default())
    }
}

impl StreamingSelector {
    /// A selector with the default thresholds.
    pub fn new() -> Self {
        StreamingSelector::default()
    }

    /// A selector with custom thresholds.
    pub fn with_config(config: StreamConfig) -> Self {
        StreamingSelector {
            config,
            measured: OnlineSlTracker::new(),
            replayed: OnlineSlTracker::new(),
            novelty: OnlineSlTracker::new(),
            last_new_at: 0,
            rounds: 0,
            stopped_at: None,
        }
    }

    fn bucket(config: &StreamConfig, seq_len: u32) -> u32 {
        seq_len / config.quantization.max(1)
    }

    /// The active configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Merge one round's worth of measured observations (typically the
    /// union of all worker shards' chunk trackers for that round) and
    /// return whether measurement may stop now.
    ///
    /// New-SL bookkeeping is at round granularity: a new SL anywhere in
    /// the round resets the saturation clock to the round's *end*, which
    /// can only delay the stop relative to exact per-iteration tracking.
    pub fn ingest_round(&mut self, round: &OnlineSlTracker) -> bool {
        if round.iterations() > 0 {
            let unique_before = self.novelty.unique_count();
            self.measured.merge(round);
            for (sl, count) in round.sl_counts() {
                let bucket = Self::bucket(&self.config, sl);
                self.novelty.observe_n(bucket, 0.0, count);
            }
            self.rounds += 1;
            if self.novelty.unique_count() > unique_before {
                self.last_new_at = self.novelty.iterations();
            }
        }
        self.should_stop()
    }

    /// Whether the early-stop rule currently holds: at least a full
    /// saturation window measured, and either no new SL within the last
    /// window or a Good–Turing unseen probability at or below the
    /// threshold.
    pub fn should_stop(&mut self) -> bool {
        if self.stopped_at.is_some() {
            return true;
        }
        let window = self.config.saturation_window.max(1);
        let ingested = self.novelty.iterations();
        let saturated = ingested >= window
            && (ingested - self.last_new_at >= window
                || self.novelty.unseen_probability() <= self.config.unseen_threshold);
        if saturated {
            self.stopped_at = Some(ingested);
        }
        saturated
    }

    /// Conservatively, whether the early-stop rule could hold after up
    /// to `upcoming` more measured iterations are ingested. `false` is a
    /// guarantee — the stop rule requires a full saturation window of
    /// ingested iterations, so until the window can complete no stop
    /// fires and a caller may overlap work across the next merge.
    /// `true` only means a stop is possible, not that it will happen.
    pub fn stop_possible_after(&self, upcoming: u64) -> bool {
        self.stopped_at.is_some()
            || self.novelty.iterations().saturating_add(upcoming)
                >= self.config.saturation_window.max(1)
    }

    /// [`Self::stop_possible_after`] expressed as a budget: the smallest
    /// number of upcoming measured iterations after which the early-stop
    /// rule could hold. `stop_possible_after(n)` is `true` exactly when
    /// `n >= stop_credit()`, and the credit is `0` once the stop has
    /// fired. Pipelined callers use the credit to gate round speculation
    /// without holding a selector reference across threads: a round of
    /// `n` iterations may overlap the previous round's merge whenever
    /// `n < credit`.
    pub fn stop_credit(&self) -> u64 {
        if self.stopped_at.is_some() {
            return 0;
        }
        self.config
            .saturation_window
            .max(1)
            .saturating_sub(self.novelty.iterations())
    }

    /// Record a measured iteration outside the round flow (a shape never
    /// profiled before surfacing during the replay phase).
    pub fn observe_measured(&mut self, seq_len: u32, stat: f64) {
        self.measured.observe(seq_len, stat);
        let bucket = Self::bucket(&self.config, seq_len);
        self.novelty.observe(bucket, 0.0);
    }

    /// Count an iteration by replaying a statistic already recorded for
    /// its shape, without charging a measurement. Replayed iterations
    /// weigh into the selection with the exact statistic given, so the
    /// streamed aggregates match the full-epoch log's.
    pub fn observe_replayed(&mut self, seq_len: u32, stat: f64) {
        self.replayed.observe(seq_len, stat);
        let bucket = Self::bucket(&self.config, seq_len);
        self.novelty.observe(bucket, 0.0);
    }

    /// The merged tracker of measured observations.
    pub fn tracker(&self) -> &OnlineSlTracker {
        &self.measured
    }

    /// Iterations actually measured (profiled).
    pub fn iterations_measured(&self) -> u64 {
        self.measured.iterations()
    }

    /// Iterations seen in total: measured plus replayed.
    pub fn iterations_seen(&self) -> u64 {
        self.measured.iterations() + self.replayed.iterations()
    }

    /// Rounds merged during the measurement phase.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Measured iterations at the moment the early stop fired, if it has.
    pub fn stopped_at(&self) -> Option<u64> {
        self.stopped_at
    }

    /// Serialize the selector's complete state — configuration, measured/
    /// replayed/novelty trackers (compensation terms included), round
    /// count, and stop state — to a JSON checkpoint string.
    ///
    /// [`Self::restore`] rebuilds a selector that continues *bit-for-bit*
    /// identically to the original: every float is written with
    /// round-trip-exact formatting, so a run interrupted at any round
    /// boundary and resumed from its checkpoint reaches the same
    /// [`Self::stopped_at`] and the same [`Self::finalize`] selection as
    /// an uninterrupted run (enforced by the workspace property tests).
    pub fn checkpoint(&self) -> String {
        serde::json::to_string(self).expect("selector serialization is infallible")
    }

    /// Rebuild a selector from a [`Self::checkpoint`] string.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when the checkpoint is malformed
    /// or structurally incompatible ([`Self::validate`]).
    pub fn restore(checkpoint: &str) -> Result<Self, CoreError> {
        let selector: StreamingSelector = serde::json::from_str(checkpoint)
            .map_err(|e| CoreError::invalid("checkpoint", e.to_string()))?;
        selector
            .validate()
            .map_err(|reason| CoreError::invalid("checkpoint", reason))?;
        Ok(selector)
    }

    /// Structural consistency of state adopted from a checkpoint: each
    /// tracker's internal invariants ([`OnlineSlTracker::validate`]) and
    /// a stop marker that lies inside the ingested stream. A corrupt but
    /// parseable checkpoint fails here, at the restore boundary, instead
    /// of panicking later inside an accessor.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (name, tracker) in [
            ("measured", &self.measured),
            ("replayed", &self.replayed),
            ("novelty", &self.novelty),
        ] {
            tracker
                .validate()
                .map_err(|reason| format!("{name} tracker: {reason}"))?;
        }
        let seen = self.measured.iterations() + self.replayed.iterations();
        if self.novelty.iterations() != seen {
            return Err(format!(
                "novelty tracker covers {} iterations but measured + replayed is {seen}",
                self.novelty.iterations()
            ));
        }
        if let Some(stopped_at) = self.stopped_at {
            if stopped_at > self.novelty.iterations() {
                return Err(format!(
                    "stop marker at {stopped_at} lies beyond the {}-iteration stream",
                    self.novelty.iterations()
                ));
            }
        }
        Ok(())
    }

    /// Run the selection pipeline on the streamed aggregates: exact
    /// per-SL counts and statistic sums from the measured and replayed
    /// trackers, with no per-iteration log ever materialized
    /// ([`SeqPointPipeline::run_profiles`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyLog`] when nothing was ingested; otherwise
    /// whatever [`SeqPointPipeline::run_profiles`] reports.
    pub fn finalize(&self) -> Result<StreamingAnalysis, CoreError> {
        let mut combined = self.measured.clone();
        combined.merge(&self.replayed);
        let analysis = SeqPointPipeline::with_config(self.config.pipeline)
            .run_profiles(&combined.to_sl_profiles())?;
        Ok(StreamingAnalysis {
            analysis,
            iterations_measured: self.measured.iterations(),
            iterations_total: self.iterations_seen(),
            rounds: self.rounds,
            stopped_at: self.stopped_at,
            unseen_probability: self.novelty.unseen_probability(),
        })
    }
}

/// The outcome of a streamed selection: the ordinary pipeline analysis
/// plus how much of the epoch actually had to be profiled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingAnalysis {
    analysis: SeqPointAnalysis,
    iterations_measured: u64,
    iterations_total: u64,
    rounds: u32,
    stopped_at: Option<u64>,
    unseen_probability: f64,
}

impl StreamingAnalysis {
    /// The pipeline analysis over the streamed counts.
    pub fn analysis(&self) -> &SeqPointAnalysis {
        &self.analysis
    }

    /// The selected representative iterations.
    pub fn seqpoints(&self) -> &SeqPointSet {
        self.analysis.seqpoints()
    }

    /// Iterations actually profiled before/despite the early stop.
    pub fn iterations_measured(&self) -> u64 {
        self.iterations_measured
    }

    /// Iterations in the epoch (measured + replayed).
    pub fn iterations_total(&self) -> u64 {
        self.iterations_total
    }

    /// Iterations whose measurement the early stop skipped.
    pub fn iterations_skipped(&self) -> u64 {
        self.iterations_total - self.iterations_measured
    }

    /// Whether measurement stopped before exhausting the epoch.
    pub fn early_stopped(&self) -> bool {
        self.iterations_measured < self.iterations_total
    }

    /// Measured iterations at the moment the stop rule fired, if it did.
    pub fn stopped_at(&self) -> Option<u64> {
        self.stopped_at
    }

    /// Rounds merged during the measurement phase.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The Good–Turing unseen probability over the whole ingested
    /// stream, at the stop rule's bucket granularity
    /// ([`StreamConfig::quantization`]).
    pub fn unseen_probability(&self) -> f64 {
        self.unseen_probability
    }

    /// Fraction of the epoch that was profiled, in `(0, 1]`.
    pub fn measured_fraction(&self) -> f64 {
        if self.iterations_total == 0 {
            return 1.0;
        }
        self.iterations_measured as f64 / self.iterations_total as f64
    }

    /// Epoch iterations per profiled iteration — the epoch-logging cost
    /// reduction the early stop buys on top of the SeqPoint reduction.
    pub fn logging_speedup(&self) -> f64 {
        if self.iterations_measured == 0 {
            return 1.0;
        }
        self.iterations_total as f64 / self.iterations_measured as f64
    }
}

/// Run the full streaming selection over an in-memory iteration stream:
/// deal each `round_len`-iteration block round-robin across `num_shards`
/// worker trackers, merge, stop measuring on saturation, replay the
/// rest, and select.
///
/// The selection is **shard-count independent**: for any `num_shards`,
/// the merged state after round `r` covers exactly the stream's first
/// `r * round_len` iterations, so the stop point and the resulting
/// SeqPoints match the unsharded (`num_shards = 1`) run.
///
/// ```
/// use seqpoint_core::stream::{select_streaming, StreamConfig};
/// use seqpoint_core::EpochLog;
///
/// # fn main() -> Result<(), seqpoint_core::CoreError> {
/// // A closed SL space: 40 lengths cycling over 4000 iterations.
/// let log = EpochLog::from_pairs(
///     (0..4000u32).map(|i| (10 + (i * 7) % 40, 1.0 + f64::from((i * 7) % 40))),
/// );
/// let streamed = select_streaming(&log, 4, 64, &StreamConfig::default())?;
/// assert!(streamed.early_stopped());
/// assert!(streamed.logging_speedup() > 2.0);
/// assert_eq!(streamed.iterations_total(), 4000);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] for zero `num_shards`/`round_len` or a
/// negative/non-finite unseen threshold; otherwise whatever
/// [`StreamingSelector::finalize`] reports.
pub fn select_streaming(
    log: &EpochLog,
    num_shards: usize,
    round_len: usize,
    config: &StreamConfig,
) -> Result<StreamingAnalysis, CoreError> {
    if num_shards == 0 {
        return Err(CoreError::invalid("num_shards", "must be positive"));
    }
    if round_len == 0 {
        return Err(CoreError::invalid("round_len", "must be positive"));
    }
    if config.unseen_threshold < 0.0 || !config.unseen_threshold.is_finite() {
        return Err(CoreError::invalid(
            "unseen_threshold",
            "must be non-negative and finite",
        ));
    }
    if config.quantization == 0 {
        return Err(CoreError::invalid("quantization", "must be positive"));
    }
    let mut selector = StreamingSelector::with_config(*config);
    let mut consumed = 0;
    for block in log.records().chunks(round_len) {
        // Deal by global iteration index — the same round-robin rule as
        // `sqnn_data::EpochPlan::shard` — then merge shard order.
        let mut chunks = vec![OnlineSlTracker::new(); num_shards];
        for (offset, record) in block.iter().enumerate() {
            chunks[(consumed + offset) % num_shards].observe(record.seq_len, record.stat);
        }
        let mut round = OnlineSlTracker::new();
        for chunk in &chunks {
            round.merge(chunk);
        }
        consumed += block.len();
        if selector.ingest_round(&round) {
            break;
        }
    }
    // Replay phase: the log already holds every statistic, so nothing
    // after the stop costs a measurement.
    for record in &log.records()[consumed..] {
        selector.observe_replayed(record.seq_len, record.stat);
    }
    selector.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stream with a closed SL space that saturates well before its end.
    fn cyclic_log(iterations: u32, sls: u32) -> EpochLog {
        EpochLog::from_pairs((0..iterations).map(|i| {
            let sl = 10 + (i * 13) % sls;
            (sl, 0.2 + f64::from(sl) * 0.01)
        }))
    }

    /// Selection equality across *different algorithms* (streamed per-SL
    /// sums vs the full path's incremental per-SL averages): structure
    /// and weights exact, statistics tolerant to last-ulp rounding.
    fn assert_same_selection(a: &SeqPointSet, b: &SeqPointSet) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.points().iter().zip(b.points()) {
            assert_eq!(x.seq_len, y.seq_len);
            assert_eq!(x.weight, y.weight);
            let tolerance = 1e-9 * y.stat.abs().max(1.0);
            assert!((x.stat - y.stat).abs() < tolerance);
        }
    }

    /// Bit-exact selection equality, for runs of the *same* streaming
    /// algorithm (different shard counts, or interrupted/resumed): the
    /// compensated per-SL sums make the statistics order-independent.
    fn assert_identical_selection(a: &SeqPointSet, b: &SeqPointSet) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.points().iter().zip(b.points()) {
            assert_eq!(x.seq_len, y.seq_len);
            assert_eq!(x.weight, y.weight);
            assert_eq!(
                x.stat.to_bits(),
                y.stat.to_bits(),
                "SL {}: {} vs {}",
                x.seq_len,
                x.stat,
                y.stat
            );
        }
    }

    #[test]
    fn early_stop_measures_a_fraction_and_still_selects_exactly() {
        let log = cyclic_log(5_000, 60);
        let streamed = select_streaming(&log, 4, 50, &StreamConfig::default()).unwrap();
        assert!(streamed.early_stopped());
        assert!(streamed.iterations_measured() < 1_000);
        assert_eq!(streamed.iterations_total(), 5_000);
        assert_eq!(
            streamed.iterations_skipped(),
            5_000 - streamed.iterations_measured()
        );
        assert!(streamed.logging_speedup() > 5.0);
        // Counts are exact, so the selection matches the full-epoch run
        // (weights included), despite measuring a fraction of it.
        let full = SeqPointPipeline::new().run(&log).unwrap();
        assert_same_selection(streamed.seqpoints(), full.seqpoints());
        assert_eq!(streamed.analysis().iterations(), log.len());
    }

    #[test]
    fn long_tail_stream_matches_full_selection_via_replay() {
        // Rare new SLs keep appearing past the stop: the replay phase
        // still lands them in the streamed aggregates with exact stats.
        let mut pairs: Vec<(u32, f64)> = (0..3_000u32)
            .map(|i| {
                let sl = 10 + (i * 13) % 40;
                (sl, 0.2 + f64::from(sl) * 0.01)
            })
            .collect();
        // Inject tail singletons well past saturation.
        pairs[2_500] = (500, 9.0);
        pairs[2_900] = (600, 11.0);
        let log = EpochLog::from_pairs(pairs);
        let streamed = select_streaming(&log, 3, 50, &StreamConfig::default()).unwrap();
        assert!(streamed.early_stopped());
        let full = SeqPointPipeline::new().run(&log).unwrap();
        assert_same_selection(streamed.seqpoints(), full.seqpoints());
        assert_eq!(streamed.analysis().unique_sls(), 42);
        // Nothing after the stop charged a measurement.
        assert_eq!(
            streamed.iterations_measured(),
            streamed.stopped_at().unwrap()
        );
    }

    #[test]
    fn sharded_runs_match_the_unsharded_run() {
        let log = cyclic_log(3_000, 55);
        let config = StreamConfig::default();
        let unsharded = select_streaming(&log, 1, 40, &config).unwrap();
        for shards in [2, 3, 5, 8] {
            let sharded = select_streaming(&log, shards, 40, &config).unwrap();
            assert_eq!(
                sharded.iterations_measured(),
                unsharded.iterations_measured(),
                "shards = {shards}"
            );
            assert_eq!(sharded.stopped_at(), unsharded.stopped_at());
            assert_identical_selection(sharded.seqpoints(), unsharded.seqpoints());
        }
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_garbage() {
        let log = cyclic_log(500, 30);
        let mut selector = StreamingSelector::with_config(StreamConfig::default());
        let mut round = OnlineSlTracker::new();
        for record in &log.records()[..200] {
            round.observe(record.seq_len, record.stat);
        }
        selector.ingest_round(&round);
        let restored = StreamingSelector::restore(&selector.checkpoint()).unwrap();
        assert_eq!(restored, selector);
        assert!(StreamingSelector::restore("not json").is_err());
        assert!(StreamingSelector::restore("{\"config\":3}").is_err());
    }

    #[test]
    fn restore_rejects_parseable_but_inconsistent_state() {
        // A hand-edited checkpoint whose measured tracker has counts but
        // empty statistic sums: parseable, structurally wrong. Without
        // validation this would panic later in `finalize`/`mean_stat_of`
        // instead of erroring at the restore boundary.
        let empty =
            "{\"counts\":{},\"stat_sums\":{},\"stat_sq_sums\":{},\"iterations\":0,\"last_new_sl_at\":0}";
        let corrupt_measured =
            "{\"counts\":{\"5\":2},\"stat_sums\":{},\"stat_sq_sums\":{},\"iterations\":2,\"last_new_sl_at\":1}";
        let config = "{\"saturation_window\":256,\"unseen_threshold\":0.05,\"quantization\":1,\
             \"pipeline\":{\"sl_threshold_n\":10,\"initial_k\":5,\"error_threshold_pct\":1.0,\"max_k\":64}}";
        let build = |measured: &str, stopped_at: &str| {
            format!(
                "{{\"config\":{config},\"measured\":{measured},\"replayed\":{empty},\
                 \"novelty\":{empty},\"last_new_at\":0,\"rounds\":1,\"stopped_at\":{stopped_at}}}"
            )
        };
        assert!(matches!(
            StreamingSelector::restore(&build(corrupt_measured, "null")),
            Err(CoreError::InvalidParameter {
                parameter: "checkpoint",
                ..
            })
        ));
        // A stop marker beyond the ingested stream is equally rejected.
        assert!(matches!(
            StreamingSelector::restore(&build(empty, "100")),
            Err(CoreError::InvalidParameter {
                parameter: "checkpoint",
                ..
            })
        ));
        // The well-formed variant of the same JSON restores fine.
        assert!(StreamingSelector::restore(&build(empty, "null")).is_ok());
    }

    /// The ISSUE's kill-and-resume property: for every round boundary k,
    /// checkpointing after round k and finishing in a fresh selector
    /// produces exactly the uninterrupted run's outcome.
    #[test]
    fn resume_from_any_round_matches_the_uninterrupted_run() {
        let log = cyclic_log(2_000, 48);
        let config = StreamConfig {
            saturation_window: 200,
            ..StreamConfig::default()
        };
        let round_len = 64;
        let uninterrupted = select_streaming(&log, 3, round_len, &config).unwrap();
        let total_rounds = uninterrupted.rounds() as usize;
        assert!(total_rounds >= 3, "need several rounds to interrupt");
        for kill_after in 1..=total_rounds {
            // Run the measurement phase up to the kill point...
            let mut selector = StreamingSelector::with_config(config);
            let mut consumed = 0;
            for block in log.records().chunks(round_len).take(kill_after) {
                let mut round = OnlineSlTracker::new();
                for record in block {
                    round.observe(record.seq_len, record.stat);
                }
                consumed += block.len();
                if selector.ingest_round(&round) {
                    break;
                }
            }
            // ... persist, "crash", restore into a fresh selector ...
            let mut resumed = StreamingSelector::restore(&selector.checkpoint()).unwrap();
            drop(selector);
            // ... and finish the stream from the same position.
            if !resumed.should_stop() {
                for block in log.records()[consumed..].chunks(round_len) {
                    let mut round = OnlineSlTracker::new();
                    for record in block {
                        round.observe(record.seq_len, record.stat);
                    }
                    consumed += block.len();
                    if resumed.ingest_round(&round) {
                        break;
                    }
                }
            }
            for record in &log.records()[consumed..] {
                resumed.observe_replayed(record.seq_len, record.stat);
            }
            let finished = resumed.finalize().unwrap();
            assert_eq!(
                finished.stopped_at(),
                uninterrupted.stopped_at(),
                "kill after round {kill_after}"
            );
            assert_eq!(
                finished.iterations_measured(),
                uninterrupted.iterations_measured()
            );
            assert_eq!(
                finished.iterations_total(),
                uninterrupted.iterations_total()
            );
            assert_eq!(finished.rounds(), uninterrupted.rounds());
            assert_identical_selection(finished.seqpoints(), uninterrupted.seqpoints());
        }
    }

    #[test]
    fn stop_requires_the_full_window_to_elapse() {
        // One SL only: Good–Turing hits 0 almost immediately, but the
        // window still has to pass before the stop may fire.
        let window = 100;
        let config = StreamConfig {
            saturation_window: window,
            ..StreamConfig::default()
        };
        let mut selector = StreamingSelector::with_config(config);
        for _round in 0..25 {
            let mut round = OnlineSlTracker::new();
            for _ in 0..8 {
                round.observe(42, 1.0);
            }
            let stop = selector.ingest_round(&round);
            assert!(
                !stop || selector.iterations_measured() >= window,
                "stop fired at {} iterations (window {window})",
                selector.iterations_measured()
            );
        }
        // 200 iterations of one SL: well past the window, stop holds.
        assert!(selector.should_stop());
        assert!(selector.stopped_at().unwrap() >= window);
    }

    #[test]
    fn stop_possible_after_bounds_the_window() {
        let config = StreamConfig {
            saturation_window: 100,
            ..StreamConfig::default()
        };
        let mut selector = StreamingSelector::with_config(config);
        // Empty selector: a stop needs the full window.
        assert!(!selector.stop_possible_after(99));
        assert!(selector.stop_possible_after(100));
        let mut round = OnlineSlTracker::new();
        for _ in 0..40 {
            round.observe(42, 1.0);
        }
        assert!(!selector.ingest_round(&round));
        // 40 ingested: 59 more cannot complete the window, 60 can.
        assert!(!selector.stop_possible_after(59));
        assert!(selector.stop_possible_after(60));
        // Once stopped, any horizon reports possible.
        let mut big = OnlineSlTracker::new();
        for _ in 0..160 {
            big.observe(42, 1.0);
        }
        assert!(selector.ingest_round(&big));
        assert!(selector.stop_possible_after(0));
    }

    #[test]
    fn stop_credit_is_the_stop_possible_threshold() {
        let config = StreamConfig {
            saturation_window: 100,
            ..StreamConfig::default()
        };
        let mut selector = StreamingSelector::with_config(config);
        // The credit is exactly the boundary of `stop_possible_after`,
        // at every ingestion level: `possible(n)` ⟺ `n >= credit`.
        for _round in 0..6 {
            let credit = selector.stop_credit();
            for n in [0, 1, credit.saturating_sub(1), credit, credit + 1, 500] {
                assert_eq!(
                    selector.stop_possible_after(n),
                    n >= credit,
                    "possible({n}) vs credit {credit}"
                );
            }
            let mut round = OnlineSlTracker::new();
            for _ in 0..30 {
                round.observe(42, 1.0);
            }
            selector.ingest_round(&round);
        }
        // 180 one-SL iterations ingested: stopped, credit exhausted.
        assert!(selector.should_stop());
        assert_eq!(selector.stop_credit(), 0);
        assert!(selector.stop_possible_after(0));
    }

    #[test]
    fn open_ended_stream_never_stops_measuring() {
        // Every iteration a fresh SL: neither criterion can fire, and
        // the count-only phase never runs.
        let log = EpochLog::from_pairs((0..500u32).map(|i| (i, 1.0)));
        let streamed = select_streaming(
            &log,
            2,
            25,
            &StreamConfig {
                saturation_window: 50,
                unseen_threshold: 0.05,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        assert!(!streamed.early_stopped());
        assert_eq!(streamed.iterations_measured(), 500);
        assert!(streamed.unseen_probability() > 0.9);
    }

    #[test]
    fn good_turing_criterion_fires_on_long_tails() {
        // 30 hot SLs plus a slow drip of fresh singletons: the strict
        // no-new-SL window never elapses, but Good–Turing does.
        let log = EpochLog::from_pairs((0..4_000u32).map(|i| {
            if i % 40 == 39 {
                (1_000 + i, 5.0) // a new singleton every 40 iterations
            } else {
                (10 + i % 30, 1.0)
            }
        }));
        let config = StreamConfig {
            saturation_window: 64,
            unseen_threshold: 0.04,
            ..StreamConfig::default()
        };
        let streamed = select_streaming(&log, 4, 32, &config).unwrap();
        assert!(streamed.early_stopped());
        // Stop fired once singletons/iterations fell to the threshold,
        // far before the stream ended.
        let stopped = streamed.stopped_at().unwrap();
        assert!((64..2_000).contains(&stopped), "stopped at {stopped}");
    }

    #[test]
    fn quantization_stops_earlier_on_wide_sl_spaces() {
        // A wide space of 300 near-adjacent SLs over 2000 iterations:
        // at exact granularity singletons abound, but at bucket width 16
        // the space closes quickly.
        let log = EpochLog::from_pairs((0..2_000u32).map(|i| {
            let sl = 50 + (i * 97) % 300;
            (sl, 0.5 + f64::from(sl) * 0.002)
        }));
        let exact = StreamConfig {
            saturation_window: 128,
            unseen_threshold: 0.02,
            ..StreamConfig::default()
        };
        let bucketed = StreamConfig {
            quantization: 16,
            ..exact
        };
        let with_exact = select_streaming(&log, 4, 32, &exact).unwrap();
        let with_buckets = select_streaming(&log, 4, 32, &bucketed).unwrap();
        assert!(with_buckets.early_stopped());
        assert!(
            with_buckets.iterations_measured() < with_exact.iterations_measured(),
            "bucketed {} vs exact {}",
            with_buckets.iterations_measured(),
            with_exact.iterations_measured()
        );
        // Quantization only gates the stop — the selection still matches
        // the full-epoch pipeline because counts stay exact per SL.
        let full = SeqPointPipeline::new().run(&log).unwrap();
        assert_same_selection(with_buckets.seqpoints(), full.seqpoints());
    }

    #[test]
    fn rejects_invalid_parameters() {
        let log = cyclic_log(100, 10);
        assert!(select_streaming(&log, 0, 10, &StreamConfig::default()).is_err());
        assert!(select_streaming(&log, 1, 0, &StreamConfig::default()).is_err());
        let bad = StreamConfig {
            unseen_threshold: -0.1,
            ..StreamConfig::default()
        };
        assert!(select_streaming(&log, 1, 10, &bad).is_err());
        let bad_q = StreamConfig {
            quantization: 0,
            ..StreamConfig::default()
        };
        assert!(select_streaming(&log, 1, 10, &bad_q).is_err());
        assert_eq!(
            select_streaming(&EpochLog::new(), 1, 10, &StreamConfig::default()),
            Err(CoreError::EmptyLog)
        );
    }
}
