use serde::{Deserialize, Serialize};

use crate::binning::Bin;

/// One representative iteration: a sequence length, the statistic observed
/// for it during identification, and the weight of the bin it represents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeqPoint {
    /// The representative sequence length.
    pub seq_len: u32,
    /// The mean statistic of that SL on the identification configuration.
    pub stat: f64,
    /// The number of epoch iterations this SeqPoint stands for.
    pub weight: u64,
}

/// A weighted set of SeqPoints — the paper's distilled representative
/// training run.
///
/// The set is architecture independent: to evaluate new hardware or
/// software, re-profile only these `len()` sequence lengths and combine
/// them with [`SeqPointSet::project_total_with`] (Eq. 1) or
/// [`SeqPointSet::project_ratio_with`] (for ratio statistics like
/// throughput, which Eq. 1 normalizes by the total weight).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeqPointSet {
    points: Vec<SeqPoint>,
}

impl SeqPointSet {
    /// Build a set from points (kept in the given order).
    pub fn from_points(points: Vec<SeqPoint>) -> Self {
        SeqPointSet { points }
    }

    /// Select one SeqPoint per bin: the SL whose mean statistic is closest
    /// to the bin's iteration-weighted average (Fig. 10, step 3), weighted
    /// by the bin size (step 4).
    ///
    /// Empty bins are skipped.
    pub fn select(bins: &[Bin]) -> Self {
        let mut points = Vec::with_capacity(bins.len());
        for bin in bins {
            if bin.is_empty() {
                continue;
            }
            let target = bin.mean_stat();
            let repr = bin
                .profiles
                .iter()
                .min_by(|a, b| {
                    (a.mean_stat - target)
                        .abs()
                        .total_cmp(&(b.mean_stat - target).abs())
                })
                .expect("bin is non-empty");
            points.push(SeqPoint {
                seq_len: repr.seq_len,
                stat: repr.mean_stat,
                weight: bin.weight(),
            });
        }
        SeqPointSet { points }
    }

    /// The SeqPoints, ascending by the order of their bins.
    pub fn points(&self) -> &[SeqPoint] {
        &self.points
    }

    /// Number of SeqPoints (the iterations one must profile).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The representative sequence lengths.
    pub fn seq_lens(&self) -> Vec<u32> {
        self.points.iter().map(|p| p.seq_len).collect()
    }

    /// Sum of all weights (= iterations in the profiled epoch).
    pub fn total_weight(&self) -> u64 {
        self.points.iter().map(|p| p.weight).sum()
    }

    /// Eq. 1 with the identification-time statistics:
    /// `Σ wᵢ · sᵢ`.
    pub fn project_total(&self) -> f64 {
        self.points.iter().map(|p| p.stat * p.weight as f64).sum()
    }

    /// Eq. 1 with re-measured statistics: `Σ wᵢ · stat(slᵢ)`.
    ///
    /// `stat_of` re-profiles a single SeqPoint SL on the target system —
    /// the cross-configuration use the paper evaluates in Section VI-D.
    pub fn project_total_with(&self, mut stat_of: impl FnMut(u32) -> f64) -> f64 {
        self.points
            .iter()
            .map(|p| stat_of(p.seq_len) * p.weight as f64)
            .sum()
    }

    /// Weight-normalized projection for ratio statistics (throughput,
    /// IPC): `Σ wᵢ · stat(slᵢ) / Σ wᵢ` (the normalization the paper notes
    /// under Eq. 1).
    pub fn project_ratio_with(&self, stat_of: impl FnMut(u32) -> f64) -> f64 {
        let w = self.total_weight();
        if w == 0 {
            return 0.0;
        }
        self.project_total_with(stat_of) / w as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::bin_profiles;
    use crate::SlProfile;

    fn profiles() -> Vec<SlProfile> {
        vec![
            SlProfile {
                seq_len: 10,
                count: 5,
                mean_stat: 1.0,
            },
            SlProfile {
                seq_len: 12,
                count: 3,
                mean_stat: 1.2,
            },
            SlProfile {
                seq_len: 14,
                count: 2,
                mean_stat: 1.4,
            },
            SlProfile {
                seq_len: 90,
                count: 1,
                mean_stat: 9.0,
            },
            SlProfile {
                seq_len: 95,
                count: 1,
                mean_stat: 9.5,
            },
        ]
    }

    #[test]
    fn representative_is_closest_to_bin_mean() {
        let bins = bin_profiles(&profiles(), 2).unwrap();
        let set = SeqPointSet::select(&bins);
        assert_eq!(set.len(), 2);
        // Bin 1 weighted mean = (5·1.0 + 3·1.2 + 2·1.4)/10 = 1.12 → SL 12.
        assert_eq!(set.points()[0].seq_len, 12);
        assert_eq!(set.points()[0].weight, 10);
        // Bin 2 mean = 9.25; both are 0.25 away, min_by keeps the first.
        assert_eq!(set.points()[1].weight, 2);
    }

    #[test]
    fn weights_sum_to_iteration_count() {
        let bins = bin_profiles(&profiles(), 3).unwrap();
        let set = SeqPointSet::select(&bins);
        assert_eq!(set.total_weight(), 12);
    }

    #[test]
    fn projection_uses_weights() {
        let set = SeqPointSet::from_points(vec![
            SeqPoint {
                seq_len: 10,
                stat: 1.0,
                weight: 4,
            },
            SeqPoint {
                seq_len: 20,
                stat: 2.0,
                weight: 6,
            },
        ]);
        assert!((set.project_total() - 16.0).abs() < 1e-12);
        // Cross-config projection: stats doubled.
        let doubled = set.project_total_with(|sl| match sl {
            10 => 2.0,
            20 => 4.0,
            _ => unreachable!(),
        });
        assert!((doubled - 32.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_projection_normalizes_by_weight() {
        let set = SeqPointSet::from_points(vec![
            SeqPoint {
                seq_len: 1,
                stat: 0.0,
                weight: 1,
            },
            SeqPoint {
                seq_len: 2,
                stat: 0.0,
                weight: 3,
            },
        ]);
        let ratio = set.project_ratio_with(|sl| if sl == 1 { 100.0 } else { 20.0 });
        assert!((ratio - 40.0).abs() < 1e-12); // (100 + 3·20)/4
    }

    #[test]
    fn empty_set_is_harmless() {
        let set = SeqPointSet::default();
        assert!(set.is_empty());
        assert_eq!(set.project_total(), 0.0);
        assert_eq!(set.project_ratio_with(|_| 1.0), 0.0);
    }

    #[test]
    fn one_bin_per_unique_sl_reproduces_totals_exactly() {
        let p = profiles();
        let bins = bin_profiles(&p, 1000).unwrap();
        let set = SeqPointSet::select(&bins);
        assert_eq!(set.len(), p.len());
        let actual: f64 = p.iter().map(|x| x.mean_stat * x.count as f64).sum();
        assert!((set.project_total() - actual).abs() < 1e-9);
    }
}
