//! Online sequence-length coverage tracking.
//!
//! The paper's mechanism profiles exactly one epoch (Fig. 10, step 1).
//! For very large datasets even one epoch is expensive; since SeqPoint
//! only needs the *unique SLs* and their frequencies, logging can stop
//! early once new sequence lengths stop appearing. This tracker ingests
//! iterations as they execute and reports when the SL space has
//! saturated, plus a Good–Turing estimate of the probability that the
//! next iteration shows an unseen SL.
//!
//! The tracker's per-iteration cost must stay negligible next to the
//! SQNN work it measures, so the per-SL state lives in dense columnar
//! lanes (one contiguous count lane plus compensated sum /
//! sum-of-squares lanes) indexed by a compact SL lookup table — the hot
//! [`OnlineSlTracker::observe`] path is one table load and three lane
//! updates, with no tree walk.

use std::collections::BTreeMap;

use serde::{Deserialize, Error, JsonKey, Serialize, Value};

use crate::stats::CompensatedSum;

/// SLs below this bound get a direct-indexed lookup-table entry; larger
/// SLs (none of the paper's workloads come close) fall back to a binary
/// search of the sorted SL table. Bounds the table at 256 KiB.
const SL_LUT_CAP: usize = 1 << 16;

/// Streaming tracker of the sequence-length space observed so far.
///
/// Internally a dense columnar layout: `sls` holds the observed SLs in
/// ascending order, and `counts` / `stat_sums` / `stat_sq_sums` are
/// parallel lanes indexed by slot. `lut[sl]` maps a small SL directly
/// to `slot + 1` (0 = absent), so the observe hot path is branch-light.
/// The serialized form is unchanged from the original BTreeMap-keyed
/// representation: three JSON maps with ascending stringified SL keys —
/// the BTreeMap ordering semantics are the canonical serialization
/// order, and checkpoints round-trip bit-identically.
///
/// ```
/// use seqpoint_core::online::OnlineSlTracker;
///
/// let mut tracker = OnlineSlTracker::new();
/// for sl in [10, 20, 10, 30, 20, 10, 10, 20, 30, 10] {
///     tracker.observe(sl, 0.1);
/// }
/// assert_eq!(tracker.unique_count(), 3);
/// assert!(tracker.saturated(5)); // no new SL in the last 5 iterations
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineSlTracker {
    /// Observed SLs, strictly ascending; slot order for all lanes.
    sls: Vec<u32>,
    counts: Vec<u64>,
    // Neumaier-compensated so that sharded merges and sequential scans
    // of the same stream produce bit-identical per-SL statistics.
    stat_sums: Vec<CompensatedSum>,
    stat_sq_sums: Vec<CompensatedSum>,
    /// `lut[sl] == slot + 1` for every observed `sl < SL_LUT_CAP`;
    /// 0 marks an unobserved SL. Derived from `sls`, excluded from
    /// equality and serialization.
    lut: Vec<u32>,
    iterations: u64,
    last_new_sl_at: u64,
}

/// Equality over the observation state; the lookup table is a pure
/// function of `sls` and is skipped.
impl PartialEq for OnlineSlTracker {
    fn eq(&self, other: &Self) -> bool {
        self.sls == other.sls
            && self.counts == other.counts
            && self.stat_sums == other.stat_sums
            && self.stat_sq_sums == other.stat_sq_sums
            && self.iterations == other.iterations
            && self.last_new_sl_at == other.last_new_sl_at
    }
}

impl OnlineSlTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        OnlineSlTracker::default()
    }

    /// Slot of `seq_len`, if observed.
    #[inline]
    fn slot_of(&self, seq_len: u32) -> Option<usize> {
        let i = seq_len as usize;
        if i < self.lut.len() {
            let slot = self.lut[i];
            (slot != 0).then(|| slot as usize - 1)
        } else if i < SL_LUT_CAP {
            None
        } else {
            self.sls.binary_search(&seq_len).ok()
        }
    }

    /// Open a zeroed slot for a new SL, keeping `sls` ascending. Cold:
    /// runs once per distinct SL, never in the saturated steady state.
    #[cold]
    fn insert_slot(&mut self, seq_len: u32) -> usize {
        let slot = self.sls.partition_point(|&s| s < seq_len);
        self.sls.insert(slot, seq_len);
        self.counts.insert(slot, 0);
        self.stat_sums.insert(slot, CompensatedSum::default());
        self.stat_sq_sums.insert(slot, CompensatedSum::default());
        // Every slot at or after the insertion point shifted right.
        for &moved in &self.sls[slot + 1..] {
            if let Some(entry) = self.lut.get_mut(moved as usize) {
                *entry += 1;
            }
        }
        let i = seq_len as usize;
        if i < SL_LUT_CAP {
            if i >= self.lut.len() {
                self.lut.resize(i + 1, 0);
            }
            self.lut[i] = slot as u32 + 1;
        }
        slot
    }

    /// Recompute the lookup table from the SL column.
    fn rebuild_lut(&mut self) {
        self.lut.clear();
        if let Some(&max_small) = self
            .sls
            .iter()
            .filter(|&&sl| (sl as usize) < SL_LUT_CAP)
            .max()
        {
            self.lut.resize(max_small as usize + 1, 0);
        }
        for (slot, &sl) in self.sls.iter().enumerate() {
            if let Some(entry) = self.lut.get_mut(sl as usize) {
                *entry = slot as u32 + 1;
            }
        }
    }

    /// Record one iteration's sequence length and statistic.
    pub fn observe(&mut self, seq_len: u32, stat: f64) {
        self.observe_n(seq_len, stat, 1);
    }

    /// Record `n` iterations of the same sequence length and statistic
    /// at once (the first occurrence marks the new-SL position).
    pub fn observe_n(&mut self, seq_len: u32, stat: f64, n: u64) {
        if n == 0 {
            return;
        }
        let slot = match self.slot_of(seq_len) {
            Some(slot) => slot,
            None => self.insert_slot(seq_len),
        };
        if self.counts[slot] == 0 {
            self.last_new_sl_at = self.iterations + 1;
        }
        self.counts[slot] += n;
        self.iterations += n;
        self.stat_sums[slot].add_scaled(stat, n);
        self.stat_sq_sums[slot].add_scaled(stat * stat, n);
    }

    /// Iterations observed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Distinct sequence lengths observed so far.
    pub fn unique_count(&self) -> usize {
        self.sls.len()
    }

    /// Whether this sequence length has been observed.
    pub fn contains(&self, seq_len: u32) -> bool {
        self.slot_of(seq_len).is_some()
    }

    /// `(seq_len, count)` pairs observed so far, ascending by SL.
    pub fn sl_counts(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.sls
            .iter()
            .zip(&self.counts)
            .map(|(&sl, &count)| (sl, count))
    }

    /// Mean statistic of a sequence length, if observed.
    pub fn mean_stat_of(&self, seq_len: u32) -> Option<f64> {
        let slot = self.slot_of(seq_len)?;
        Some(self.stat_sums[slot].value() / self.counts[slot] as f64)
    }

    /// Population variance of a sequence length's statistic, if observed
    /// (`E[s²] − E[s]²`, floored at 0 against rounding).
    ///
    /// Per the paper's key observation 4, iterations sharing an SL behave
    /// near-identically, so this is close to zero on well-behaved
    /// workloads — a cheap runtime check of that assumption, and the
    /// signal [`Self::to_epoch_log`] discards (it reconstructs every
    /// iteration at the per-SL *mean*).
    ///
    /// **Precision**: the sum-of-squares formula keeps the accumulator
    /// mergeable (sharded merges stay order-independent, which Welford
    /// recurrences are not), at the cost of catastrophic cancellation
    /// when the spread is many orders of magnitude below the mean: the
    /// result is reliable down to a floor of roughly `ε · mean²`
    /// (`ε` = `f64::EPSILON`). Below that floor read the value as
    /// "indistinguishable from zero at this magnitude", not as an exact
    /// variance — which answers the homogeneity question above either
    /// way, but is not suitable for, say, ULP-level jitter measurement
    /// of billion-scale counter statistics.
    pub fn stat_variance_of(&self, seq_len: u32) -> Option<f64> {
        let slot = self.slot_of(seq_len)?;
        let count = self.counts[slot];
        let mean = self.stat_sums[slot].value() / count as f64;
        let mean_sq = self.stat_sq_sums[slot].value() / count as f64;
        Some((mean_sq - mean * mean).max(0.0))
    }

    /// Whether no new SL has appeared within the last `window`
    /// iterations (and at least `window` iterations have been seen).
    pub fn saturated(&self, window: u64) -> bool {
        self.iterations >= window.max(1) && self.iterations - self.last_new_sl_at >= window.max(1)
    }

    /// Absorb another tracker's observations, as if its stream had been
    /// replayed after this one's.
    ///
    /// Counts and iteration totals add exactly, and the per-SL statistic
    /// sums are Neumaier-compensated ([`CompensatedSum`]), so the merged
    /// [`Self::to_epoch_log`] is independent of how observations were
    /// sharded — bit-for-bit, not merely up to rounding.
    /// Saturation is merged *conservatively*: every SL new
    /// to the merged space first occurred in `other` at a position no
    /// later than `other`'s own last first-occurrence, so the merged
    /// last-new-SL marker is placed there (never earlier than the true
    /// position — merging can only delay [`Self::saturated`], not fire it
    /// early).
    ///
    /// One pass over both SL columns: while `other`'s SLs all land on
    /// existing slots — the steady state once the SL space closes — the
    /// lanes add in place; the first genuinely new SL switches to a
    /// two-pointer column splice for the remainder, and doubles as the
    /// new-SL detection (no separate key scan).
    pub fn merge(&mut self, other: &OnlineSlTracker) {
        if other.iterations == 0 {
            return;
        }
        let pre_iterations = self.iterations;
        let mut i = 0; // slot cursor in self
        let mut j = 0; // slot cursor in other
        while j < other.sls.len() {
            while i < self.sls.len() && self.sls[i] < other.sls[j] {
                i += 1;
            }
            if i < self.sls.len() && self.sls[i] == other.sls[j] {
                self.counts[i] += other.counts[j];
                self.stat_sums[i].merge(other.stat_sums[j]);
                self.stat_sq_sums[i].merge(other.stat_sq_sums[j]);
                i += 1;
                j += 1;
            } else {
                break;
            }
        }
        if j < other.sls.len() {
            self.splice_tail(other, i, j);
            self.last_new_sl_at = pre_iterations + other.last_new_sl_at;
            self.rebuild_lut();
        }
        self.iterations += other.iterations;
    }

    /// Merge `other`'s columns from slot `from_other` into this
    /// tracker's columns from slot `from_self` (both tails unprocessed
    /// by the in-place pass; `other.sls[from_other]` is new to `self`).
    fn splice_tail(&mut self, other: &OnlineSlTracker, from_self: usize, from_other: usize) {
        let cap = (self.sls.len() - from_self) + (other.sls.len() - from_other);
        let mut sls = Vec::with_capacity(cap);
        let mut counts = Vec::with_capacity(cap);
        let mut stat_sums = Vec::with_capacity(cap);
        let mut stat_sq_sums = Vec::with_capacity(cap);
        let (mut i, mut j) = (from_self, from_other);
        while i < self.sls.len() || j < other.sls.len() {
            let take_self =
                j >= other.sls.len() || (i < self.sls.len() && self.sls[i] <= other.sls[j]);
            if take_self {
                let both = j < other.sls.len() && self.sls[i] == other.sls[j];
                sls.push(self.sls[i]);
                let mut count = self.counts[i];
                let mut sum = self.stat_sums[i];
                let mut sq = self.stat_sq_sums[i];
                if both {
                    count += other.counts[j];
                    sum.merge(other.stat_sums[j]);
                    sq.merge(other.stat_sq_sums[j]);
                    j += 1;
                }
                counts.push(count);
                stat_sums.push(sum);
                stat_sq_sums.push(sq);
                i += 1;
            } else {
                // A new SL: land it exactly as the map-keyed merge did —
                // a fresh accumulator absorbing the shard's sum, not a
                // field copy (the internal split can differ bit-wise).
                sls.push(other.sls[j]);
                counts.push(other.counts[j]);
                let mut sum = CompensatedSum::default();
                sum.merge(other.stat_sums[j]);
                let mut sq = CompensatedSum::default();
                sq.merge(other.stat_sq_sums[j]);
                stat_sums.push(sum);
                stat_sq_sums.push(sq);
                j += 1;
            }
        }
        self.sls.truncate(from_self);
        self.counts.truncate(from_self);
        self.stat_sums.truncate(from_self);
        self.stat_sq_sums.truncate(from_self);
        self.sls.append(&mut sls);
        self.counts.append(&mut counts);
        self.stat_sums.append(&mut stat_sums);
        self.stat_sq_sums.append(&mut stat_sq_sums);
    }

    /// Structural consistency check for state adopted from outside the
    /// type's own methods (a deserialized checkpoint): the per-SL lanes
    /// must align with a strictly ascending SL column, the counts must
    /// sum to the iteration total, and the last-new-SL marker must lie
    /// inside the stream. Every accessor indexes the lanes on the
    /// assumption these hold, so adopting unvalidated state would turn a
    /// corrupt (but parseable) checkpoint into a later panic instead of
    /// an error.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.stat_sums.len() != self.sls.len()
            || self.stat_sq_sums.len() != self.sls.len()
            || self.counts.len() != self.sls.len()
        {
            return Err("per-SL counts and statistic sums cover different SLs".to_owned());
        }
        if self.sls.windows(2).any(|w| w[0] >= w[1]) {
            return Err("per-SL table is not strictly ascending".to_owned());
        }
        let total: u64 = self.counts.iter().sum();
        if total != self.iterations {
            return Err(format!(
                "per-SL counts sum to {total} but the tracker claims {} iterations",
                self.iterations
            ));
        }
        if self.last_new_sl_at > self.iterations {
            return Err(format!(
                "last new SL at {} lies beyond the {}-iteration stream",
                self.last_new_sl_at, self.iterations
            ));
        }
        Ok(())
    }

    /// Good–Turing estimate of the probability that the *next* iteration
    /// exercises an unseen SL: `(#SLs seen exactly once) / iterations`.
    pub fn unseen_probability(&self) -> f64 {
        if self.iterations == 0 {
            return 1.0;
        }
        let singletons = self.counts.iter().filter(|&&c| c == 1).count();
        singletons as f64 / self.iterations as f64
    }

    /// The per-SL aggregate of the observations so far, ascending by SL —
    /// ready for [`crate::SeqPointPipeline::run_profiles`] without
    /// materializing a per-iteration log.
    pub fn to_sl_profiles(&self) -> Vec<crate::SlProfile> {
        (0..self.sls.len())
            .map(|slot| crate::SlProfile {
                seq_len: self.sls[slot],
                count: self.counts[slot],
                mean_stat: self.stat_sums[slot].value() / self.counts[slot] as f64,
            })
            .collect()
    }

    /// Convert the observations collected so far into an [`crate::EpochLog`]
    /// with one record per observed iteration.
    ///
    /// **Mean-only reconstruction**: the tracker keeps per-SL aggregates,
    /// not individual records, so every reconstructed iteration of an SL
    /// carries that SL's *mean* statistic. Counts, per-SL means, and the
    /// epoch total are preserved, but all within-SL variation is
    /// flattened to zero — a consumer computing per-SL variance over this
    /// log gets 0 for every SL. Read the true spread from
    /// [`Self::stat_variance_of`] instead.
    pub fn to_epoch_log(&self) -> crate::EpochLog {
        let mut log = crate::EpochLog::new();
        for slot in 0..self.sls.len() {
            let mean = self.stat_sums[slot].value() / self.counts[slot] as f64;
            for _ in 0..self.counts[slot] {
                log.push(self.sls[slot], mean);
            }
        }
        log
    }
}

/// A per-SL lane rendered as a JSON map with ascending stringified SL
/// keys — byte-identical to the original `BTreeMap<u32, _>` encoding.
fn lane_to_value<T: Serialize>(sls: &[u32], lane: &[T]) -> Value {
    Value::Map(
        sls.iter()
            .zip(lane)
            .map(|(sl, v)| (sl.to_key(), v.to_value()))
            .collect(),
    )
}

impl Serialize for OnlineSlTracker {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("counts".to_owned(), lane_to_value(&self.sls, &self.counts)),
            (
                "stat_sums".to_owned(),
                lane_to_value(&self.sls, &self.stat_sums),
            ),
            (
                "stat_sq_sums".to_owned(),
                lane_to_value(&self.sls, &self.stat_sq_sums),
            ),
            ("iterations".to_owned(), self.iterations.to_value()),
            ("last_new_sl_at".to_owned(), self.last_new_sl_at.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for OnlineSlTracker {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.as_map().is_none() {
            return Err(Error::expected("map", "OnlineSlTracker"));
        }
        let field = |name: &str| {
            value
                .get_field(name)
                .ok_or_else(|| Error::missing_field(name, "OnlineSlTracker"))
        };
        let counts: BTreeMap<u32, u64> = Deserialize::from_value(field("counts")?)?;
        let stat_sums: BTreeMap<u32, CompensatedSum> =
            Deserialize::from_value(field("stat_sums")?)?;
        let stat_sq_sums: BTreeMap<u32, CompensatedSum> =
            Deserialize::from_value(field("stat_sq_sums")?)?;
        let iterations = u64::from_value(field("iterations")?)?;
        let last_new_sl_at = u64::from_value(field("last_new_sl_at")?)?;
        // The dense layout cannot even represent misaligned lanes, so a
        // checkpoint whose maps cover different SLs fails here instead
        // of at a later `validate`.
        if !stat_sums.keys().eq(counts.keys()) || !stat_sq_sums.keys().eq(counts.keys()) {
            return Err(Error::custom(
                "per-SL counts and statistic sums cover different SLs",
            ));
        }
        let mut tracker = OnlineSlTracker {
            sls: counts.keys().copied().collect(),
            counts: counts.values().copied().collect(),
            stat_sums: stat_sums.values().copied().collect(),
            stat_sq_sums: stat_sq_sums.values().copied().collect(),
            lut: Vec::new(),
            iterations,
            last_new_sl_at,
        };
        tracker.rebuild_lut();
        Ok(tracker)
    }
}

/// The original `BTreeMap`-keyed tracker, kept verbatim as the oracle
/// for the dense layout's bit-identity property tests.
#[cfg(test)]
pub(crate) mod reference {
    use std::collections::BTreeMap;

    use serde::{Deserialize, Serialize};

    use crate::stats::CompensatedSum;

    #[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
    pub(crate) struct ReferenceSlTracker {
        counts: BTreeMap<u32, u64>,
        stat_sums: BTreeMap<u32, CompensatedSum>,
        stat_sq_sums: BTreeMap<u32, CompensatedSum>,
        iterations: u64,
        last_new_sl_at: u64,
    }

    impl ReferenceSlTracker {
        pub(crate) fn new() -> Self {
            ReferenceSlTracker::default()
        }

        pub(crate) fn observe(&mut self, seq_len: u32, stat: f64) {
            self.observe_n(seq_len, stat, 1);
        }

        pub(crate) fn observe_n(&mut self, seq_len: u32, stat: f64, n: u64) {
            if n == 0 {
                return;
            }
            let count = self.counts.entry(seq_len).or_insert(0);
            if *count == 0 {
                self.last_new_sl_at = self.iterations + 1;
            }
            *count += n;
            self.iterations += n;
            self.stat_sums
                .entry(seq_len)
                .or_default()
                .add_scaled(stat, n);
            self.stat_sq_sums
                .entry(seq_len)
                .or_default()
                .add_scaled(stat * stat, n);
        }

        pub(crate) fn merge(&mut self, other: &ReferenceSlTracker) {
            if other.iterations == 0 {
                return;
            }
            let introduces_new = other.counts.keys().any(|sl| !self.counts.contains_key(sl));
            if introduces_new {
                self.last_new_sl_at = self.iterations + other.last_new_sl_at;
            }
            self.iterations += other.iterations;
            for (&sl, &count) in &other.counts {
                *self.counts.entry(sl).or_insert(0) += count;
            }
            for (&sl, &sum) in &other.stat_sums {
                self.stat_sums.entry(sl).or_default().merge(sum);
            }
            for (&sl, &sum) in &other.stat_sq_sums {
                self.stat_sq_sums.entry(sl).or_default().merge(sum);
            }
        }

        pub(crate) fn saturated(&self, window: u64) -> bool {
            self.iterations >= window.max(1)
                && self.iterations - self.last_new_sl_at >= window.max(1)
        }

        pub(crate) fn unseen_probability(&self) -> f64 {
            if self.iterations == 0 {
                return 1.0;
            }
            let singletons = self.counts.values().filter(|&&c| c == 1).count();
            singletons as f64 / self.iterations as f64
        }

        pub(crate) fn sl_counts(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
            self.counts.iter().map(|(&sl, &count)| (sl, count))
        }

        pub(crate) fn mean_stat_of(&self, seq_len: u32) -> Option<f64> {
            let count = *self.counts.get(&seq_len)?;
            Some(self.stat_sums[&seq_len].value() / count as f64)
        }

        pub(crate) fn stat_variance_of(&self, seq_len: u32) -> Option<f64> {
            let count = *self.counts.get(&seq_len)?;
            let mean = self.stat_sums[&seq_len].value() / count as f64;
            let mean_sq = self.stat_sq_sums[&seq_len].value() / count as f64;
            Some((mean_sq - mean * mean).max(0.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn saturation_detects_a_closed_sl_space() {
        let mut t = OnlineSlTracker::new();
        let mut rng = StdRng::seed_from_u64(3);
        // 20 possible SLs: after a few hundred draws all are seen.
        for _ in 0..500 {
            t.observe(10 + rng.gen_range(0..20), 1.0);
        }
        assert_eq!(t.unique_count(), 20);
        assert!(t.saturated(100));
        assert!(t.unseen_probability() < 0.01);
    }

    #[test]
    fn open_ended_space_does_not_saturate() {
        let mut t = OnlineSlTracker::new();
        for i in 0..100u32 {
            t.observe(i, 1.0); // every iteration is a new SL
        }
        assert!(!t.saturated(10));
        assert!(t.unseen_probability() > 0.9);
    }

    #[test]
    fn epoch_log_preserves_counts_and_means() {
        let mut t = OnlineSlTracker::new();
        t.observe(5, 1.0);
        t.observe(5, 3.0);
        t.observe(9, 10.0);
        let log = t.to_epoch_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log.mean_stat_of(5), Some(2.0));
        assert_eq!(log.mean_stat_of(9), Some(10.0));
        assert!((log.actual_total() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_edge_cases() {
        let t = OnlineSlTracker::new();
        assert_eq!(t.unique_count(), 0);
        assert!(!t.saturated(1));
        assert_eq!(t.unseen_probability(), 1.0);
        assert!(t.to_epoch_log().is_empty());
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut bulk = OnlineSlTracker::new();
        bulk.observe_n(5, 1.5, 3);
        bulk.observe_n(9, 2.0, 1);
        bulk.observe_n(9, 2.0, 0); // no-op
        let mut single = OnlineSlTracker::new();
        for _ in 0..3 {
            single.observe(5, 1.5);
        }
        single.observe(9, 2.0);
        assert_eq!(bulk.iterations(), single.iterations());
        assert_eq!(bulk.unseen_probability(), single.unseen_probability());
        assert_eq!(bulk.sl_counts().collect::<Vec<_>>(), vec![(5, 3), (9, 1)]);
        assert_eq!(bulk.mean_stat_of(5), Some(1.5));
        // The bulk first-occurrence marks the start of the run, so
        // saturation is no laxer than the per-iteration equivalent.
        assert_eq!(bulk.saturated(3), single.saturated(3));
    }

    #[test]
    fn merge_is_equivalent_to_sequential_observation() {
        let mut rng = StdRng::seed_from_u64(11);
        let stream: Vec<(u32, f64)> = (0..300)
            .map(|_| (5 + rng.gen_range(0..25), rng.gen_range(0.0..2.0)))
            .collect();
        let mut whole = OnlineSlTracker::new();
        for &(sl, stat) in &stream {
            whole.observe(sl, stat);
        }
        // Shard round-robin over 3 trackers, then merge.
        let mut shards = vec![OnlineSlTracker::new(); 3];
        for (i, &(sl, stat)) in stream.iter().enumerate() {
            shards[i % 3].observe(sl, stat);
        }
        let mut merged = OnlineSlTracker::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.iterations(), whole.iterations());
        assert_eq!(merged.unique_count(), whole.unique_count());
        assert_eq!(merged.unseen_probability(), whole.unseen_probability());
        // Compensated sums: per-SL means agree bit-for-bit, not merely
        // up to summation-order rounding.
        let (m, w) = (merged.to_epoch_log(), whole.to_epoch_log());
        assert_eq!(m.len(), w.len());
        for (mp, wp) in m.sl_profiles().iter().zip(w.sl_profiles()) {
            assert_eq!(mp.seq_len, wp.seq_len);
            assert_eq!(mp.count, wp.count);
            assert_eq!(
                mp.mean_stat.to_bits(),
                wp.mean_stat.to_bits(),
                "SL {}: {} vs {}",
                mp.seq_len,
                mp.mean_stat,
                wp.mean_stat
            );
        }
    }

    #[test]
    fn variance_tracks_within_sl_spread() {
        let mut t = OnlineSlTracker::new();
        t.observe(5, 1.0);
        t.observe(5, 3.0);
        t.observe(9, 10.0);
        // SL 5: mean 2, E[s²] = 5, variance 1; SL 9: single observation.
        assert!((t.stat_variance_of(5).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(t.stat_variance_of(9), Some(0.0));
        assert_eq!(t.stat_variance_of(99), None);
        // The reconstructed epoch log flattens that spread to the mean —
        // the documented mean-only reconstruction.
        let log = t.to_epoch_log();
        assert_eq!(log.mean_stat_of(5), Some(2.0));
        assert!(log
            .records()
            .iter()
            .filter(|r| r.seq_len == 5)
            .all(|r| r.stat == 2.0));
    }

    #[test]
    fn variance_survives_sharded_merges() {
        let mut rng = StdRng::seed_from_u64(21);
        let stream: Vec<(u32, f64)> = (0..400)
            .map(|_| (3 + rng.gen_range(0..9), rng.gen_range(0.5..4.5)))
            .collect();
        let mut whole = OnlineSlTracker::new();
        let mut shards = vec![OnlineSlTracker::new(); 4];
        for (i, &(sl, stat)) in stream.iter().enumerate() {
            whole.observe(sl, stat);
            shards[i % 4].observe(sl, stat);
        }
        let mut merged = OnlineSlTracker::new();
        for shard in &shards {
            merged.merge(shard);
        }
        for (sl, _) in whole.sl_counts() {
            assert_eq!(
                merged.stat_variance_of(sl).unwrap().to_bits(),
                whole.stat_variance_of(sl).unwrap().to_bits(),
                "SL {sl}"
            );
            assert!(whole.stat_variance_of(sl).unwrap() > 0.0, "SL {sl}");
        }
    }

    #[test]
    fn merge_saturation_is_conservative() {
        // Replaying `b` after `a` saturates immediately (no SL in `b` is
        // new), but the conservative merge only knows `b`'s internal
        // last-first-occurrence, so it must not report saturation earlier
        // than an exact replay would.
        let mut a = OnlineSlTracker::new();
        for _ in 0..50 {
            a.observe(7, 1.0);
        }
        let mut b = OnlineSlTracker::new();
        b.observe(7, 1.0); // nothing new to `a`
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(merged.saturated(40));
        // A shard that introduces a new SL resets the marker to its end.
        let mut c = OnlineSlTracker::new();
        c.observe(9, 2.0);
        merged.merge(&c);
        assert!(!merged.saturated(40));
        // Merging an empty tracker is a no-op.
        let snapshot = merged.clone();
        merged.merge(&OnlineSlTracker::new());
        assert_eq!(merged, snapshot);
    }

    #[test]
    fn early_stop_log_matches_full_log_projection() {
        // Stopping once saturated loses little: the tracked prefix's
        // SL-frequency profile converges to the full epoch's.
        let mut rng = StdRng::seed_from_u64(9);
        let all: Vec<(u32, f64)> = (0..2_000)
            .map(|_| {
                let sl = 10 + rng.gen_range(0..40);
                (sl, 0.1 + f64::from(sl) * 0.01)
            })
            .collect();
        let mut t = OnlineSlTracker::new();
        let mut stopped_at = all.len();
        for (i, &(sl, stat)) in all.iter().enumerate() {
            t.observe(sl, stat);
            if t.saturated(200) {
                stopped_at = i + 1;
                break;
            }
        }
        assert!(stopped_at < all.len(), "should stop early");
        // Mean iteration statistic of the prefix is close to the epoch's.
        let prefix_mean = t.to_epoch_log().mean_stat();
        let full_mean: f64 = all.iter().map(|&(_, s)| s).sum::<f64>() / all.len() as f64;
        let rel = ((prefix_mean - full_mean) / full_mean).abs();
        assert!(rel < 0.05, "rel = {rel}");
    }

    #[test]
    fn large_sls_fall_back_to_binary_search() {
        // SLs past the lookup-table cap take the binary-search path and
        // must behave identically to small ones.
        let mut t = OnlineSlTracker::new();
        let big = (SL_LUT_CAP as u32) + 17;
        t.observe(big, 2.0);
        t.observe(5, 1.0);
        t.observe(big, 4.0);
        assert!(t.contains(big));
        assert!(t.contains(5));
        assert!(!t.contains(big + 1));
        assert_eq!(t.mean_stat_of(big), Some(3.0));
        assert_eq!(t.sl_counts().collect::<Vec<_>>(), vec![(5, 1), (big, 2)]);
        let json = serde::json::to_string(&t).unwrap();
        let back: OnlineSlTracker = serde::json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn deserialize_rejects_misaligned_lanes() {
        let json = r#"{"counts":{"5":2},"stat_sums":{},"stat_sq_sums":{"5":{"sum":1.0,"compensation":0.0}},"iterations":2,"last_new_sl_at":1}"#;
        let err = serde::json::from_str::<OnlineSlTracker>(json).unwrap_err();
        assert!(err.to_string().contains("cover different SLs"), "{err}");
    }
}

/// Bit-identity of the dense columnar tracker against the original
/// `BTreeMap`-keyed implementation ([`reference::ReferenceSlTracker`]):
/// same observations in the same order must yield the same serialized
/// checkpoint bytes, the same saturation/Good–Turing decisions, and the
/// same per-SL statistics — bit-for-bit, not merely up to rounding.
#[cfg(test)]
mod parity_tests {
    use super::reference::ReferenceSlTracker;
    use super::*;
    use proptest::prelude::*;

    /// One step of an interleaved workload: observe on the main pair,
    /// observe on a side (shard) pair, or merge the side pair into the
    /// main pair — the three entry points that mutate tracker state.
    #[derive(Debug, Clone)]
    enum Op {
        Main(u32, f64, u64),
        Side(u32, f64, u64),
        MergeSide,
    }

    /// SLs hugging both sides of the lookup-table cap so the direct
    /// index and the binary-search fallback are both exercised.
    fn arb_sl() -> impl Strategy<Value = u32> {
        (0u32..48, 0u32..2).prop_map(|(sl, big)| {
            if big == 1 {
                super::SL_LUT_CAP as u32 + sl
            } else {
                sl
            }
        })
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        (0u32..8, arb_sl(), -1.0e3f64..1.0e3, 0u64..4).prop_map(|(kind, sl, stat, n)| match kind {
            0..=3 => Op::Main(sl, stat, n),
            4..=6 => Op::Side(sl, stat, n),
            _ => Op::MergeSide,
        })
    }

    /// Both serializations, bit-for-bit.
    fn same_bytes(dense: &OnlineSlTracker, oracle: &ReferenceSlTracker) -> (String, String) {
        (
            serde::json::to_string(dense).expect("dense serializes"),
            serde::json::to_string(oracle).expect("oracle serializes"),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn interleavings_match_the_reference_bit_for_bit(ops in proptest::collection::vec(arb_op(), 0..60)) {
            let mut dense = OnlineSlTracker::new();
            let mut oracle = ReferenceSlTracker::new();
            let mut side_dense = OnlineSlTracker::new();
            let mut side_oracle = ReferenceSlTracker::new();
            for op in ops {
                match op {
                    Op::Main(sl, stat, n) => {
                        dense.observe_n(sl, stat, n);
                        oracle.observe_n(sl, stat, n);
                    }
                    Op::Side(sl, stat, n) => {
                        side_dense.observe_n(sl, stat, n);
                        side_oracle.observe_n(sl, stat, n);
                    }
                    Op::MergeSide => {
                        dense.merge(&side_dense);
                        oracle.merge(&side_oracle);
                        side_dense = OnlineSlTracker::new();
                        side_oracle = ReferenceSlTracker::new();
                    }
                }
                let (d, o) = same_bytes(&dense, &oracle);
                prop_assert_eq!(d, o);
            }
            prop_assert!(dense.validate().is_ok());
            // Selection-facing signals agree bit-for-bit.
            prop_assert_eq!(
                dense.unseen_probability().to_bits(),
                oracle.unseen_probability().to_bits()
            );
            for window in [1u64, 2, 5, 50] {
                prop_assert_eq!(dense.saturated(window), oracle.saturated(window));
            }
            prop_assert_eq!(
                dense.sl_counts().collect::<Vec<_>>(),
                oracle.sl_counts().collect::<Vec<_>>()
            );
            for (sl, _) in oracle.sl_counts() {
                prop_assert_eq!(
                    dense.mean_stat_of(sl).map(f64::to_bits),
                    oracle.mean_stat_of(sl).map(f64::to_bits)
                );
                prop_assert_eq!(
                    dense.stat_variance_of(sl).map(f64::to_bits),
                    oracle.stat_variance_of(sl).map(f64::to_bits)
                );
            }
        }

        #[test]
        fn checkpoints_round_trip_through_either_implementation(
            obs in proptest::collection::vec((arb_sl(), -10.0f64..10.0, 1u64..4), 0..40)
        ) {
            let mut dense = OnlineSlTracker::new();
            let mut oracle = ReferenceSlTracker::new();
            for &(sl, stat, n) in &obs {
                dense.observe_n(sl, stat, n);
                oracle.observe_n(sl, stat, n);
            }
            let (d, o) = same_bytes(&dense, &oracle);
            prop_assert_eq!(&d, &o);
            // A dense tracker restored from an oracle-written checkpoint
            // (and vice versa) continues the stream identically.
            let mut restored_dense: OnlineSlTracker =
                serde::json::from_str(&o).expect("dense reads oracle bytes");
            let mut restored_oracle: ReferenceSlTracker =
                serde::json::from_str(&d).expect("oracle reads dense bytes");
            prop_assert_eq!(&restored_dense, &dense);
            for &(sl, stat, n) in &obs {
                restored_dense.observe_n(sl.wrapping_add(1), stat, n);
                restored_oracle.observe_n(sl.wrapping_add(1), stat, n);
            }
            let (d2, o2) = same_bytes(&restored_dense, &restored_oracle);
            prop_assert_eq!(d2, o2);
        }

        #[test]
        fn sharded_merges_match_the_reference_bit_for_bit(
            stream in proptest::collection::vec((arb_sl(), -5.0f64..5.0), 1..200),
            shards in 1usize..5
        ) {
            let mut dense_shards = vec![OnlineSlTracker::new(); shards];
            let mut oracle_shards = vec![ReferenceSlTracker::new(); shards];
            for (i, &(sl, stat)) in stream.iter().enumerate() {
                dense_shards[i % shards].observe(sl, stat);
                oracle_shards[i % shards].observe(sl, stat);
            }
            let mut dense = OnlineSlTracker::new();
            let mut oracle = ReferenceSlTracker::new();
            for (d, o) in dense_shards.iter().zip(&oracle_shards) {
                dense.merge(d);
                oracle.merge(o);
                let (db, ob) = same_bytes(&dense, &oracle);
                prop_assert_eq!(db, ob);
            }
            prop_assert!(dense.validate().is_ok());
        }
    }
}
