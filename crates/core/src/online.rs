//! Online sequence-length coverage tracking.
//!
//! The paper's mechanism profiles exactly one epoch (Fig. 10, step 1).
//! For very large datasets even one epoch is expensive; since SeqPoint
//! only needs the *unique SLs* and their frequencies, logging can stop
//! early once new sequence lengths stop appearing. This tracker ingests
//! iterations as they execute and reports when the SL space has
//! saturated, plus a Good–Turing estimate of the probability that the
//! next iteration shows an unseen SL.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::stats::CompensatedSum;

/// Streaming tracker of the sequence-length space observed so far.
///
/// ```
/// use seqpoint_core::online::OnlineSlTracker;
///
/// let mut tracker = OnlineSlTracker::new();
/// for sl in [10, 20, 10, 30, 20, 10, 10, 20, 30, 10] {
///     tracker.observe(sl, 0.1);
/// }
/// assert_eq!(tracker.unique_count(), 3);
/// assert!(tracker.saturated(5)); // no new SL in the last 5 iterations
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineSlTracker {
    counts: BTreeMap<u32, u64>,
    // Neumaier-compensated so that sharded merges and sequential scans
    // of the same stream produce bit-identical per-SL statistics.
    stat_sums: BTreeMap<u32, CompensatedSum>,
    stat_sq_sums: BTreeMap<u32, CompensatedSum>,
    iterations: u64,
    last_new_sl_at: u64,
}

impl OnlineSlTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        OnlineSlTracker::default()
    }

    /// Record one iteration's sequence length and statistic.
    pub fn observe(&mut self, seq_len: u32, stat: f64) {
        self.observe_n(seq_len, stat, 1);
    }

    /// Record `n` iterations of the same sequence length and statistic
    /// at once (the first occurrence marks the new-SL position).
    pub fn observe_n(&mut self, seq_len: u32, stat: f64, n: u64) {
        if n == 0 {
            return;
        }
        let count = self.counts.entry(seq_len).or_insert(0);
        if *count == 0 {
            self.last_new_sl_at = self.iterations + 1;
        }
        *count += n;
        self.iterations += n;
        self.stat_sums
            .entry(seq_len)
            .or_default()
            .add_scaled(stat, n);
        self.stat_sq_sums
            .entry(seq_len)
            .or_default()
            .add_scaled(stat * stat, n);
    }

    /// Iterations observed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Distinct sequence lengths observed so far.
    pub fn unique_count(&self) -> usize {
        self.counts.len()
    }

    /// Whether this sequence length has been observed.
    pub fn contains(&self, seq_len: u32) -> bool {
        self.counts.contains_key(&seq_len)
    }

    /// `(seq_len, count)` pairs observed so far, ascending by SL.
    pub fn sl_counts(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&sl, &count)| (sl, count))
    }

    /// Mean statistic of a sequence length, if observed.
    pub fn mean_stat_of(&self, seq_len: u32) -> Option<f64> {
        let count = *self.counts.get(&seq_len)?;
        Some(self.stat_sums[&seq_len].value() / count as f64)
    }

    /// Population variance of a sequence length's statistic, if observed
    /// (`E[s²] − E[s]²`, floored at 0 against rounding).
    ///
    /// Per the paper's key observation 4, iterations sharing an SL behave
    /// near-identically, so this is close to zero on well-behaved
    /// workloads — a cheap runtime check of that assumption, and the
    /// signal [`Self::to_epoch_log`] discards (it reconstructs every
    /// iteration at the per-SL *mean*).
    ///
    /// **Precision**: the sum-of-squares formula keeps the accumulator
    /// mergeable (sharded merges stay order-independent, which Welford
    /// recurrences are not), at the cost of catastrophic cancellation
    /// when the spread is many orders of magnitude below the mean: the
    /// result is reliable down to a floor of roughly `ε · mean²`
    /// (`ε` = `f64::EPSILON`). Below that floor read the value as
    /// "indistinguishable from zero at this magnitude", not as an exact
    /// variance — which answers the homogeneity question above either
    /// way, but is not suitable for, say, ULP-level jitter measurement
    /// of billion-scale counter statistics.
    pub fn stat_variance_of(&self, seq_len: u32) -> Option<f64> {
        let count = *self.counts.get(&seq_len)?;
        let mean = self.stat_sums[&seq_len].value() / count as f64;
        let mean_sq = self.stat_sq_sums[&seq_len].value() / count as f64;
        Some((mean_sq - mean * mean).max(0.0))
    }

    /// Whether no new SL has appeared within the last `window`
    /// iterations (and at least `window` iterations have been seen).
    pub fn saturated(&self, window: u64) -> bool {
        self.iterations >= window.max(1) && self.iterations - self.last_new_sl_at >= window.max(1)
    }

    /// Absorb another tracker's observations, as if its stream had been
    /// replayed after this one's.
    ///
    /// Counts and iteration totals add exactly, and the per-SL statistic
    /// sums are Neumaier-compensated ([`CompensatedSum`]), so the merged
    /// [`Self::to_epoch_log`] is independent of how observations were
    /// sharded — bit-for-bit, not merely up to rounding.
    /// Saturation is merged *conservatively*: every SL new
    /// to the merged space first occurred in `other` at a position no
    /// later than `other`'s own last first-occurrence, so the merged
    /// last-new-SL marker is placed there (never earlier than the true
    /// position — merging can only delay [`Self::saturated`], not fire it
    /// early).
    pub fn merge(&mut self, other: &OnlineSlTracker) {
        if other.iterations == 0 {
            return;
        }
        let introduces_new = other.counts.keys().any(|sl| !self.counts.contains_key(sl));
        if introduces_new {
            self.last_new_sl_at = self.iterations + other.last_new_sl_at;
        }
        self.iterations += other.iterations;
        for (&sl, &count) in &other.counts {
            *self.counts.entry(sl).or_insert(0) += count;
        }
        for (&sl, &sum) in &other.stat_sums {
            self.stat_sums.entry(sl).or_default().merge(sum);
        }
        for (&sl, &sum) in &other.stat_sq_sums {
            self.stat_sq_sums.entry(sl).or_default().merge(sum);
        }
    }

    /// Structural consistency check for state adopted from outside the
    /// type's own methods (a deserialized checkpoint): the three per-SL
    /// maps must cover the same SLs, the counts must sum to the
    /// iteration total, and the last-new-SL marker must lie inside the
    /// stream. Every accessor indexes the maps on the assumption these
    /// hold, so adopting unvalidated state would turn a corrupt (but
    /// parseable) checkpoint into a later panic instead of an error.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.stat_sums.len() != self.counts.len()
            || self.stat_sq_sums.len() != self.counts.len()
            || self
                .counts
                .keys()
                .any(|sl| !self.stat_sums.contains_key(sl) || !self.stat_sq_sums.contains_key(sl))
        {
            return Err("per-SL counts and statistic sums cover different SLs".to_owned());
        }
        let total: u64 = self.counts.values().sum();
        if total != self.iterations {
            return Err(format!(
                "per-SL counts sum to {total} but the tracker claims {} iterations",
                self.iterations
            ));
        }
        if self.last_new_sl_at > self.iterations {
            return Err(format!(
                "last new SL at {} lies beyond the {}-iteration stream",
                self.last_new_sl_at, self.iterations
            ));
        }
        Ok(())
    }

    /// Good–Turing estimate of the probability that the *next* iteration
    /// exercises an unseen SL: `(#SLs seen exactly once) / iterations`.
    pub fn unseen_probability(&self) -> f64 {
        if self.iterations == 0 {
            return 1.0;
        }
        let singletons = self.counts.values().filter(|&&c| c == 1).count();
        singletons as f64 / self.iterations as f64
    }

    /// The per-SL aggregate of the observations so far, ascending by SL —
    /// ready for [`crate::SeqPointPipeline::run_profiles`] without
    /// materializing a per-iteration log.
    pub fn to_sl_profiles(&self) -> Vec<crate::SlProfile> {
        self.counts
            .iter()
            .map(|(&seq_len, &count)| crate::SlProfile {
                seq_len,
                count,
                mean_stat: self.stat_sums[&seq_len].value() / count as f64,
            })
            .collect()
    }

    /// Convert the observations collected so far into an [`crate::EpochLog`]
    /// with one record per observed iteration.
    ///
    /// **Mean-only reconstruction**: the tracker keeps per-SL aggregates,
    /// not individual records, so every reconstructed iteration of an SL
    /// carries that SL's *mean* statistic. Counts, per-SL means, and the
    /// epoch total are preserved, but all within-SL variation is
    /// flattened to zero — a consumer computing per-SL variance over this
    /// log gets 0 for every SL. Read the true spread from
    /// [`Self::stat_variance_of`] instead.
    pub fn to_epoch_log(&self) -> crate::EpochLog {
        let mut log = crate::EpochLog::new();
        for (&sl, &count) in &self.counts {
            let mean = self.stat_sums[&sl].value() / count as f64;
            for _ in 0..count {
                log.push(sl, mean);
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn saturation_detects_a_closed_sl_space() {
        let mut t = OnlineSlTracker::new();
        let mut rng = StdRng::seed_from_u64(3);
        // 20 possible SLs: after a few hundred draws all are seen.
        for _ in 0..500 {
            t.observe(10 + rng.gen_range(0..20), 1.0);
        }
        assert_eq!(t.unique_count(), 20);
        assert!(t.saturated(100));
        assert!(t.unseen_probability() < 0.01);
    }

    #[test]
    fn open_ended_space_does_not_saturate() {
        let mut t = OnlineSlTracker::new();
        for i in 0..100u32 {
            t.observe(i, 1.0); // every iteration is a new SL
        }
        assert!(!t.saturated(10));
        assert!(t.unseen_probability() > 0.9);
    }

    #[test]
    fn epoch_log_preserves_counts_and_means() {
        let mut t = OnlineSlTracker::new();
        t.observe(5, 1.0);
        t.observe(5, 3.0);
        t.observe(9, 10.0);
        let log = t.to_epoch_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log.mean_stat_of(5), Some(2.0));
        assert_eq!(log.mean_stat_of(9), Some(10.0));
        assert!((log.actual_total() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_edge_cases() {
        let t = OnlineSlTracker::new();
        assert_eq!(t.unique_count(), 0);
        assert!(!t.saturated(1));
        assert_eq!(t.unseen_probability(), 1.0);
        assert!(t.to_epoch_log().is_empty());
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut bulk = OnlineSlTracker::new();
        bulk.observe_n(5, 1.5, 3);
        bulk.observe_n(9, 2.0, 1);
        bulk.observe_n(9, 2.0, 0); // no-op
        let mut single = OnlineSlTracker::new();
        for _ in 0..3 {
            single.observe(5, 1.5);
        }
        single.observe(9, 2.0);
        assert_eq!(bulk.iterations(), single.iterations());
        assert_eq!(bulk.unseen_probability(), single.unseen_probability());
        assert_eq!(bulk.sl_counts().collect::<Vec<_>>(), vec![(5, 3), (9, 1)]);
        assert_eq!(bulk.mean_stat_of(5), Some(1.5));
        // The bulk first-occurrence marks the start of the run, so
        // saturation is no laxer than the per-iteration equivalent.
        assert_eq!(bulk.saturated(3), single.saturated(3));
    }

    #[test]
    fn merge_is_equivalent_to_sequential_observation() {
        let mut rng = StdRng::seed_from_u64(11);
        let stream: Vec<(u32, f64)> = (0..300)
            .map(|_| (5 + rng.gen_range(0..25), rng.gen_range(0.0..2.0)))
            .collect();
        let mut whole = OnlineSlTracker::new();
        for &(sl, stat) in &stream {
            whole.observe(sl, stat);
        }
        // Shard round-robin over 3 trackers, then merge.
        let mut shards = vec![OnlineSlTracker::new(); 3];
        for (i, &(sl, stat)) in stream.iter().enumerate() {
            shards[i % 3].observe(sl, stat);
        }
        let mut merged = OnlineSlTracker::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.iterations(), whole.iterations());
        assert_eq!(merged.unique_count(), whole.unique_count());
        assert_eq!(merged.unseen_probability(), whole.unseen_probability());
        // Compensated sums: per-SL means agree bit-for-bit, not merely
        // up to summation-order rounding.
        let (m, w) = (merged.to_epoch_log(), whole.to_epoch_log());
        assert_eq!(m.len(), w.len());
        for (mp, wp) in m.sl_profiles().iter().zip(w.sl_profiles()) {
            assert_eq!(mp.seq_len, wp.seq_len);
            assert_eq!(mp.count, wp.count);
            assert_eq!(
                mp.mean_stat.to_bits(),
                wp.mean_stat.to_bits(),
                "SL {}: {} vs {}",
                mp.seq_len,
                mp.mean_stat,
                wp.mean_stat
            );
        }
    }

    #[test]
    fn variance_tracks_within_sl_spread() {
        let mut t = OnlineSlTracker::new();
        t.observe(5, 1.0);
        t.observe(5, 3.0);
        t.observe(9, 10.0);
        // SL 5: mean 2, E[s²] = 5, variance 1; SL 9: single observation.
        assert!((t.stat_variance_of(5).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(t.stat_variance_of(9), Some(0.0));
        assert_eq!(t.stat_variance_of(99), None);
        // The reconstructed epoch log flattens that spread to the mean —
        // the documented mean-only reconstruction.
        let log = t.to_epoch_log();
        assert_eq!(log.mean_stat_of(5), Some(2.0));
        assert!(log
            .records()
            .iter()
            .filter(|r| r.seq_len == 5)
            .all(|r| r.stat == 2.0));
    }

    #[test]
    fn variance_survives_sharded_merges() {
        let mut rng = StdRng::seed_from_u64(21);
        let stream: Vec<(u32, f64)> = (0..400)
            .map(|_| (3 + rng.gen_range(0..9), rng.gen_range(0.5..4.5)))
            .collect();
        let mut whole = OnlineSlTracker::new();
        let mut shards = vec![OnlineSlTracker::new(); 4];
        for (i, &(sl, stat)) in stream.iter().enumerate() {
            whole.observe(sl, stat);
            shards[i % 4].observe(sl, stat);
        }
        let mut merged = OnlineSlTracker::new();
        for shard in &shards {
            merged.merge(shard);
        }
        for (sl, _) in whole.sl_counts() {
            assert_eq!(
                merged.stat_variance_of(sl).unwrap().to_bits(),
                whole.stat_variance_of(sl).unwrap().to_bits(),
                "SL {sl}"
            );
            assert!(whole.stat_variance_of(sl).unwrap() > 0.0, "SL {sl}");
        }
    }

    #[test]
    fn merge_saturation_is_conservative() {
        // Replaying `b` after `a` saturates immediately (no SL in `b` is
        // new), but the conservative merge only knows `b`'s internal
        // last-first-occurrence, so it must not report saturation earlier
        // than an exact replay would.
        let mut a = OnlineSlTracker::new();
        for _ in 0..50 {
            a.observe(7, 1.0);
        }
        let mut b = OnlineSlTracker::new();
        b.observe(7, 1.0); // nothing new to `a`
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(merged.saturated(40));
        // A shard that introduces a new SL resets the marker to its end.
        let mut c = OnlineSlTracker::new();
        c.observe(9, 2.0);
        merged.merge(&c);
        assert!(!merged.saturated(40));
        // Merging an empty tracker is a no-op.
        let snapshot = merged.clone();
        merged.merge(&OnlineSlTracker::new());
        assert_eq!(merged, snapshot);
    }

    #[test]
    fn early_stop_log_matches_full_log_projection() {
        // Stopping once saturated loses little: the tracked prefix's
        // SL-frequency profile converges to the full epoch's.
        let mut rng = StdRng::seed_from_u64(9);
        let all: Vec<(u32, f64)> = (0..2_000)
            .map(|_| {
                let sl = 10 + rng.gen_range(0..40);
                (sl, 0.1 + f64::from(sl) * 0.01)
            })
            .collect();
        let mut t = OnlineSlTracker::new();
        let mut stopped_at = all.len();
        for (i, &(sl, stat)) in all.iter().enumerate() {
            t.observe(sl, stat);
            if t.saturated(200) {
                stopped_at = i + 1;
                break;
            }
        }
        assert!(stopped_at < all.len(), "should stop early");
        // Mean iteration statistic of the prefix is close to the epoch's.
        let prefix_mean = t.to_epoch_log().mean_stat();
        let full_mean: f64 = all.iter().map(|&(_, s)| s).sum::<f64>() / all.len() as f64;
        let rel = ((prefix_mean - full_mean) / full_mean).abs();
        assert!(rel < 0.05, "rel = {rel}");
    }
}
