//! Online sequence-length coverage tracking.
//!
//! The paper's mechanism profiles exactly one epoch (Fig. 10, step 1).
//! For very large datasets even one epoch is expensive; since SeqPoint
//! only needs the *unique SLs* and their frequencies, logging can stop
//! early once new sequence lengths stop appearing. This tracker ingests
//! iterations as they execute and reports when the SL space has
//! saturated, plus a Good–Turing estimate of the probability that the
//! next iteration shows an unseen SL.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Streaming tracker of the sequence-length space observed so far.
///
/// ```
/// use seqpoint_core::online::OnlineSlTracker;
///
/// let mut tracker = OnlineSlTracker::new();
/// for sl in [10, 20, 10, 30, 20, 10, 10, 20, 30, 10] {
///     tracker.observe(sl, 0.1);
/// }
/// assert_eq!(tracker.unique_count(), 3);
/// assert!(tracker.saturated(5)); // no new SL in the last 5 iterations
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineSlTracker {
    counts: BTreeMap<u32, u64>,
    stat_sums: BTreeMap<u32, f64>,
    iterations: u64,
    last_new_sl_at: u64,
}

impl OnlineSlTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        OnlineSlTracker::default()
    }

    /// Record one iteration's sequence length and statistic.
    pub fn observe(&mut self, seq_len: u32, stat: f64) {
        self.iterations += 1;
        let count = self.counts.entry(seq_len).or_insert(0);
        if *count == 0 {
            self.last_new_sl_at = self.iterations;
        }
        *count += 1;
        *self.stat_sums.entry(seq_len).or_insert(0.0) += stat;
    }

    /// Iterations observed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Distinct sequence lengths observed so far.
    pub fn unique_count(&self) -> usize {
        self.counts.len()
    }

    /// Whether no new SL has appeared within the last `window`
    /// iterations (and at least `window` iterations have been seen).
    pub fn saturated(&self, window: u64) -> bool {
        self.iterations >= window.max(1)
            && self.iterations - self.last_new_sl_at >= window.max(1)
    }

    /// Good–Turing estimate of the probability that the *next* iteration
    /// exercises an unseen SL: `(#SLs seen exactly once) / iterations`.
    pub fn unseen_probability(&self) -> f64 {
        if self.iterations == 0 {
            return 1.0;
        }
        let singletons = self.counts.values().filter(|&&c| c == 1).count();
        singletons as f64 / self.iterations as f64
    }

    /// Convert the observations collected so far into an [`crate::EpochLog`]
    /// with one record per observed iteration (means preserved per SL).
    pub fn to_epoch_log(&self) -> crate::EpochLog {
        let mut log = crate::EpochLog::new();
        for (&sl, &count) in &self.counts {
            let mean = self.stat_sums[&sl] / count as f64;
            for _ in 0..count {
                log.push(sl, mean);
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn saturation_detects_a_closed_sl_space() {
        let mut t = OnlineSlTracker::new();
        let mut rng = StdRng::seed_from_u64(3);
        // 20 possible SLs: after a few hundred draws all are seen.
        for _ in 0..500 {
            t.observe(10 + rng.gen_range(0..20), 1.0);
        }
        assert_eq!(t.unique_count(), 20);
        assert!(t.saturated(100));
        assert!(t.unseen_probability() < 0.01);
    }

    #[test]
    fn open_ended_space_does_not_saturate() {
        let mut t = OnlineSlTracker::new();
        for i in 0..100u32 {
            t.observe(i, 1.0); // every iteration is a new SL
        }
        assert!(!t.saturated(10));
        assert!(t.unseen_probability() > 0.9);
    }

    #[test]
    fn epoch_log_preserves_counts_and_means() {
        let mut t = OnlineSlTracker::new();
        t.observe(5, 1.0);
        t.observe(5, 3.0);
        t.observe(9, 10.0);
        let log = t.to_epoch_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log.mean_stat_of(5), Some(2.0));
        assert_eq!(log.mean_stat_of(9), Some(10.0));
        assert!((log.actual_total() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_edge_cases() {
        let t = OnlineSlTracker::new();
        assert_eq!(t.unique_count(), 0);
        assert!(!t.saturated(1));
        assert_eq!(t.unseen_probability(), 1.0);
        assert!(t.to_epoch_log().is_empty());
    }

    #[test]
    fn early_stop_log_matches_full_log_projection() {
        // Stopping once saturated loses little: the tracked prefix's
        // SL-frequency profile converges to the full epoch's.
        let mut rng = StdRng::seed_from_u64(9);
        let all: Vec<(u32, f64)> = (0..2_000)
            .map(|_| {
                let sl = 10 + rng.gen_range(0..40);
                (sl, 0.1 + f64::from(sl) * 0.01)
            })
            .collect();
        let mut t = OnlineSlTracker::new();
        let mut stopped_at = all.len();
        for (i, &(sl, stat)) in all.iter().enumerate() {
            t.observe(sl, stat);
            if t.saturated(200) {
                stopped_at = i + 1;
                break;
            }
        }
        assert!(stopped_at < all.len(), "should stop early");
        // Mean iteration statistic of the prefix is close to the epoch's.
        let prefix_mean = t.to_epoch_log().mean_stat();
        let full_mean: f64 =
            all.iter().map(|&(_, s)| s).sum::<f64>() / all.len() as f64;
        let rel = ((prefix_mean - full_mean) / full_mean).abs();
        assert!(rel < 0.05, "rel = {rel}");
    }
}
