//! Online sequence-length coverage tracking.
//!
//! The paper's mechanism profiles exactly one epoch (Fig. 10, step 1).
//! For very large datasets even one epoch is expensive; since SeqPoint
//! only needs the *unique SLs* and their frequencies, logging can stop
//! early once new sequence lengths stop appearing. This tracker ingests
//! iterations as they execute and reports when the SL space has
//! saturated, plus a Good–Turing estimate of the probability that the
//! next iteration shows an unseen SL.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Streaming tracker of the sequence-length space observed so far.
///
/// ```
/// use seqpoint_core::online::OnlineSlTracker;
///
/// let mut tracker = OnlineSlTracker::new();
/// for sl in [10, 20, 10, 30, 20, 10, 10, 20, 30, 10] {
///     tracker.observe(sl, 0.1);
/// }
/// assert_eq!(tracker.unique_count(), 3);
/// assert!(tracker.saturated(5)); // no new SL in the last 5 iterations
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineSlTracker {
    counts: BTreeMap<u32, u64>,
    stat_sums: BTreeMap<u32, f64>,
    iterations: u64,
    last_new_sl_at: u64,
}

impl OnlineSlTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        OnlineSlTracker::default()
    }

    /// Record one iteration's sequence length and statistic.
    pub fn observe(&mut self, seq_len: u32, stat: f64) {
        self.observe_n(seq_len, stat, 1);
    }

    /// Record `n` iterations of the same sequence length and statistic
    /// at once (the first occurrence marks the new-SL position).
    pub fn observe_n(&mut self, seq_len: u32, stat: f64, n: u64) {
        if n == 0 {
            return;
        }
        let count = self.counts.entry(seq_len).or_insert(0);
        if *count == 0 {
            self.last_new_sl_at = self.iterations + 1;
        }
        *count += n;
        self.iterations += n;
        *self.stat_sums.entry(seq_len).or_insert(0.0) += stat * n as f64;
    }

    /// Iterations observed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Distinct sequence lengths observed so far.
    pub fn unique_count(&self) -> usize {
        self.counts.len()
    }

    /// Whether this sequence length has been observed.
    pub fn contains(&self, seq_len: u32) -> bool {
        self.counts.contains_key(&seq_len)
    }

    /// `(seq_len, count)` pairs observed so far, ascending by SL.
    pub fn sl_counts(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&sl, &count)| (sl, count))
    }

    /// Mean statistic of a sequence length, if observed.
    pub fn mean_stat_of(&self, seq_len: u32) -> Option<f64> {
        let count = *self.counts.get(&seq_len)?;
        Some(self.stat_sums[&seq_len] / count as f64)
    }

    /// Whether no new SL has appeared within the last `window`
    /// iterations (and at least `window` iterations have been seen).
    pub fn saturated(&self, window: u64) -> bool {
        self.iterations >= window.max(1)
            && self.iterations - self.last_new_sl_at >= window.max(1)
    }

    /// Absorb another tracker's observations, as if its stream had been
    /// replayed after this one's.
    ///
    /// Counts, statistic sums, and iteration totals add exactly, so the
    /// merged [`Self::to_epoch_log`] is independent of how observations
    /// were sharded. Saturation is merged *conservatively*: every SL new
    /// to the merged space first occurred in `other` at a position no
    /// later than `other`'s own last first-occurrence, so the merged
    /// last-new-SL marker is placed there (never earlier than the true
    /// position — merging can only delay [`Self::saturated`], not fire it
    /// early).
    pub fn merge(&mut self, other: &OnlineSlTracker) {
        if other.iterations == 0 {
            return;
        }
        let introduces_new = other
            .counts
            .keys()
            .any(|sl| !self.counts.contains_key(sl));
        if introduces_new {
            self.last_new_sl_at = self.iterations + other.last_new_sl_at;
        }
        self.iterations += other.iterations;
        for (&sl, &count) in &other.counts {
            *self.counts.entry(sl).or_insert(0) += count;
        }
        for (&sl, &sum) in &other.stat_sums {
            *self.stat_sums.entry(sl).or_insert(0.0) += sum;
        }
    }

    /// Good–Turing estimate of the probability that the *next* iteration
    /// exercises an unseen SL: `(#SLs seen exactly once) / iterations`.
    pub fn unseen_probability(&self) -> f64 {
        if self.iterations == 0 {
            return 1.0;
        }
        let singletons = self.counts.values().filter(|&&c| c == 1).count();
        singletons as f64 / self.iterations as f64
    }

    /// The per-SL aggregate of the observations so far, ascending by SL —
    /// ready for [`crate::SeqPointPipeline::run_profiles`] without
    /// materializing a per-iteration log.
    pub fn to_sl_profiles(&self) -> Vec<crate::SlProfile> {
        self.counts
            .iter()
            .map(|(&seq_len, &count)| crate::SlProfile {
                seq_len,
                count,
                mean_stat: self.stat_sums[&seq_len] / count as f64,
            })
            .collect()
    }

    /// Convert the observations collected so far into an [`crate::EpochLog`]
    /// with one record per observed iteration (means preserved per SL).
    pub fn to_epoch_log(&self) -> crate::EpochLog {
        let mut log = crate::EpochLog::new();
        for (&sl, &count) in &self.counts {
            let mean = self.stat_sums[&sl] / count as f64;
            for _ in 0..count {
                log.push(sl, mean);
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn saturation_detects_a_closed_sl_space() {
        let mut t = OnlineSlTracker::new();
        let mut rng = StdRng::seed_from_u64(3);
        // 20 possible SLs: after a few hundred draws all are seen.
        for _ in 0..500 {
            t.observe(10 + rng.gen_range(0..20), 1.0);
        }
        assert_eq!(t.unique_count(), 20);
        assert!(t.saturated(100));
        assert!(t.unseen_probability() < 0.01);
    }

    #[test]
    fn open_ended_space_does_not_saturate() {
        let mut t = OnlineSlTracker::new();
        for i in 0..100u32 {
            t.observe(i, 1.0); // every iteration is a new SL
        }
        assert!(!t.saturated(10));
        assert!(t.unseen_probability() > 0.9);
    }

    #[test]
    fn epoch_log_preserves_counts_and_means() {
        let mut t = OnlineSlTracker::new();
        t.observe(5, 1.0);
        t.observe(5, 3.0);
        t.observe(9, 10.0);
        let log = t.to_epoch_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log.mean_stat_of(5), Some(2.0));
        assert_eq!(log.mean_stat_of(9), Some(10.0));
        assert!((log.actual_total() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_edge_cases() {
        let t = OnlineSlTracker::new();
        assert_eq!(t.unique_count(), 0);
        assert!(!t.saturated(1));
        assert_eq!(t.unseen_probability(), 1.0);
        assert!(t.to_epoch_log().is_empty());
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut bulk = OnlineSlTracker::new();
        bulk.observe_n(5, 1.5, 3);
        bulk.observe_n(9, 2.0, 1);
        bulk.observe_n(9, 2.0, 0); // no-op
        let mut single = OnlineSlTracker::new();
        for _ in 0..3 {
            single.observe(5, 1.5);
        }
        single.observe(9, 2.0);
        assert_eq!(bulk.iterations(), single.iterations());
        assert_eq!(bulk.unseen_probability(), single.unseen_probability());
        assert_eq!(
            bulk.sl_counts().collect::<Vec<_>>(),
            vec![(5, 3), (9, 1)]
        );
        assert_eq!(bulk.mean_stat_of(5), Some(1.5));
        // The bulk first-occurrence marks the start of the run, so
        // saturation is no laxer than the per-iteration equivalent.
        assert_eq!(bulk.saturated(3), single.saturated(3));
    }

    #[test]
    fn merge_is_equivalent_to_sequential_observation() {
        let mut rng = StdRng::seed_from_u64(11);
        let stream: Vec<(u32, f64)> = (0..300)
            .map(|_| (5 + rng.gen_range(0..25), rng.gen_range(0.0..2.0)))
            .collect();
        let mut whole = OnlineSlTracker::new();
        for &(sl, stat) in &stream {
            whole.observe(sl, stat);
        }
        // Shard round-robin over 3 trackers, then merge.
        let mut shards = vec![OnlineSlTracker::new(); 3];
        for (i, &(sl, stat)) in stream.iter().enumerate() {
            shards[i % 3].observe(sl, stat);
        }
        let mut merged = OnlineSlTracker::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.iterations(), whole.iterations());
        assert_eq!(merged.unique_count(), whole.unique_count());
        assert_eq!(merged.unseen_probability(), whole.unseen_probability());
        // Per-SL means agree up to summation-order rounding.
        let (m, w) = (merged.to_epoch_log(), whole.to_epoch_log());
        assert_eq!(m.len(), w.len());
        for (mp, wp) in m.sl_profiles().iter().zip(w.sl_profiles()) {
            assert_eq!(mp.seq_len, wp.seq_len);
            assert_eq!(mp.count, wp.count);
            assert!((mp.mean_stat - wp.mean_stat).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_saturation_is_conservative() {
        // Replaying `b` after `a` saturates immediately (no SL in `b` is
        // new), but the conservative merge only knows `b`'s internal
        // last-first-occurrence, so it must not report saturation earlier
        // than an exact replay would.
        let mut a = OnlineSlTracker::new();
        for _ in 0..50 {
            a.observe(7, 1.0);
        }
        let mut b = OnlineSlTracker::new();
        b.observe(7, 1.0); // nothing new to `a`
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(merged.saturated(40));
        // A shard that introduces a new SL resets the marker to its end.
        let mut c = OnlineSlTracker::new();
        c.observe(9, 2.0);
        merged.merge(&c);
        assert!(!merged.saturated(40));
        // Merging an empty tracker is a no-op.
        let snapshot = merged.clone();
        merged.merge(&OnlineSlTracker::new());
        assert_eq!(merged, snapshot);
    }

    #[test]
    fn early_stop_log_matches_full_log_projection() {
        // Stopping once saturated loses little: the tracked prefix's
        // SL-frequency profile converges to the full epoch's.
        let mut rng = StdRng::seed_from_u64(9);
        let all: Vec<(u32, f64)> = (0..2_000)
            .map(|_| {
                let sl = 10 + rng.gen_range(0..40);
                (sl, 0.1 + f64::from(sl) * 0.01)
            })
            .collect();
        let mut t = OnlineSlTracker::new();
        let mut stopped_at = all.len();
        for (i, &(sl, stat)) in all.iter().enumerate() {
            t.observe(sl, stat);
            if t.saturated(200) {
                stopped_at = i + 1;
                break;
            }
        }
        assert!(stopped_at < all.len(), "should stop early");
        // Mean iteration statistic of the prefix is close to the epoch's.
        let prefix_mean = t.to_epoch_log().mean_stat();
        let full_mean: f64 =
            all.iter().map(|&(_, s)| s).sum::<f64>() / all.len() as f64;
        let rel = ((prefix_mean - full_mean) / full_mean).abs();
        assert!(rel < 0.05, "rel = {rel}");
    }
}
