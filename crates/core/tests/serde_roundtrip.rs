//! JSON round-trip properties for every `#[derive(Serialize, Deserialize)]`
//! type in `seqpoint_core`.
//!
//! These pin the vendored serde shim's encoder before anything (the
//! streaming checkpoints, trace export, a future service surface)
//! depends on it: every derived type must survive
//! `json::to_string` → `json::from_str` unchanged, including f64 edge
//! values (`-0.0`, subnormals, `f64::MAX`/`MIN`), and re-serializing the
//! round-tripped value must reproduce the byte-identical JSON — which
//! `PartialEq` alone would not guarantee (`-0.0 == 0.0`).

use proptest::prelude::*;
use seqpoint_core::baselines::{BaselineKind, BaselineSelection};
use seqpoint_core::binning::{bin_profiles, Bin};
use seqpoint_core::kmeans::KMeansResult;
use seqpoint_core::multi::{MultiStatAnalysis, MultiStatLog};
use seqpoint_core::online::OnlineSlTracker;
use seqpoint_core::simpoint::{simpoint, SimPointOptions, SimPointSet};
use seqpoint_core::stats::CompensatedSum;
use seqpoint_core::stream::{select_streaming, StreamConfig, StreamingAnalysis};
use seqpoint_core::{
    EpochLog, IterationRecord, SeqPoint, SeqPointAnalysis, SeqPointConfig, SeqPointPipeline,
    SeqPointSet, SlProfile, StreamingSelector,
};

/// Assert a bit-exact JSON round trip: the value survives decoding, and
/// re-encoding the decoded value reproduces the identical JSON text.
fn assert_round_trips<T>(value: &T)
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de> + PartialEq + std::fmt::Debug,
{
    let json = serde::json::to_string(value).expect("serialization cannot fail");
    let back: T = serde::json::from_str(&json)
        .unwrap_or_else(|e| panic!("failed to parse back `{json}`: {e}"));
    assert_eq!(&back, value, "decoded value diverged; JSON was `{json}`");
    let rejson = serde::json::to_string(&back).expect("serialization cannot fail");
    assert_eq!(
        rejson, json,
        "re-encoding changed the JSON (float bits lost?)"
    );
}

/// Statistic values biased toward the f64 edge cases the ISSUE calls out:
/// signed zero, subnormals, and the extremes of the finite range.
fn arb_stat() -> impl Strategy<Value = f64> {
    (0u32..16, 0.001f64..100.0).prop_map(|(edge, x)| match edge {
        0 => 0.0,
        1 => -0.0,
        2 => 5e-324, // smallest positive subnormal
        3 => -5e-324,
        4 => f64::MIN_POSITIVE,
        5 => f64::MAX,
        6 => f64::MIN,
        7 => f64::EPSILON,
        8 => 1.234_567_890_123_456_7e300,
        9 => -9.876_543_210_987_654e-300,
        _ => x,
    })
}

fn arb_pairs() -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::vec((1u32..300, arb_stat()), 1..120)
}

/// Pairs with positive statistics, for code paths (pipeline, baselines)
/// that assume well-formed measurements.
fn arb_positive_pairs() -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::vec((1u32..200, 0.01f64..10.0), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn iteration_record_and_profile(
        seq_len in 0u32..=u32::MAX,
        stat in arb_stat(),
        count in 0u64..=u64::MAX,
    ) {
        assert_round_trips(&IterationRecord { seq_len, stat });
        assert_round_trips(&SlProfile { seq_len, count, mean_stat: stat });
    }

    #[test]
    fn epoch_log(pairs in arb_pairs()) {
        assert_round_trips(&EpochLog::from_pairs(pairs));
    }

    #[test]
    fn seqpoint_set_and_bins(pairs in arb_pairs(), k in 1u32..20) {
        let log = EpochLog::from_pairs(pairs);
        let bins: Vec<Bin> = bin_profiles(&log.sl_profiles(), k).unwrap();
        assert_round_trips(&bins);
        let set = SeqPointSet::select(&bins);
        assert_round_trips(&set);
        for point in set.points() {
            assert_round_trips::<SeqPoint>(point);
        }
    }

    #[test]
    fn pipeline_config_and_analysis(pairs in arb_positive_pairs(), e in 0.5f64..20.0) {
        let config = SeqPointConfig {
            error_threshold_pct: e,
            max_k: 512,
            ..SeqPointConfig::default()
        };
        assert_round_trips(&config);
        let log = EpochLog::from_pairs(pairs);
        let analysis: SeqPointAnalysis =
            SeqPointPipeline::with_config(config).run(&log).unwrap();
        assert_round_trips(&analysis);
    }

    #[test]
    fn baseline_kinds_and_selections(pairs in arb_positive_pairs(), warmup in 0usize..50, window in 1usize..60) {
        let log = EpochLog::from_pairs(pairs);
        assert_round_trips(&BaselineKind::Prior { warmup, window });
        for kind in BaselineKind::paper_set() {
            assert_round_trips(&kind);
            let selection: BaselineSelection = kind.select(&log).unwrap();
            assert_round_trips(&selection);
        }
    }

    #[test]
    fn online_tracker(pairs in arb_pairs()) {
        let mut tracker = OnlineSlTracker::new();
        for &(sl, stat) in &pairs {
            tracker.observe(sl, stat);
        }
        assert_round_trips(&tracker);
        // The restored tracker continues identically: same aggregates
        // after observing the same suffix.
        let json = serde::json::to_string(&tracker).unwrap();
        let mut restored: OnlineSlTracker = serde::json::from_str(&json).unwrap();
        for &(sl, stat) in &pairs {
            tracker.observe(sl, stat);
            restored.observe(sl, stat);
        }
        prop_assert_eq!(restored, tracker);
    }

    #[test]
    fn compensated_sum(values in proptest::collection::vec(arb_stat(), 0..80)) {
        let mut sum = CompensatedSum::new();
        for v in values {
            sum.add(v);
        }
        assert_round_trips(&sum);
    }

    #[test]
    fn streaming_selector_and_analysis(
        pairs in arb_positive_pairs(),
        window in 1u64..200,
        round_len in 1usize..60,
    ) {
        let config = StreamConfig {
            saturation_window: window,
            pipeline: SeqPointConfig { max_k: 512, ..SeqPointConfig::default() },
            ..StreamConfig::default()
        };
        assert_round_trips(&config);
        let log = EpochLog::from_pairs(pairs);
        let analysis: StreamingAnalysis =
            select_streaming(&log, 2, round_len, &config).unwrap();
        assert_round_trips(&analysis);
        // A mid-stream selector (the checkpointing type) round-trips too.
        let mut selector = StreamingSelector::with_config(config);
        let mut round = OnlineSlTracker::new();
        for record in log.records().iter().take(round_len) {
            round.observe(record.seq_len, record.stat);
        }
        selector.ingest_round(&round);
        assert_round_trips(&selector);
    }

    #[test]
    fn multi_stat_types(pairs in arb_positive_pairs()) {
        let mut log = MultiStatLog::new(["runtime", "energy"]).unwrap();
        for &(sl, stat) in &pairs {
            log.push(sl, [stat, stat * 2.5]).unwrap();
        }
        assert_round_trips(&log);
        let config = SeqPointConfig { max_k: 512, ..SeqPointConfig::default() };
        let analysis: MultiStatAnalysis = log.analyze_with_primary(0, config).unwrap();
        assert_round_trips(&analysis);
    }

    #[test]
    fn clustering_types(
        assignments in proptest::collection::vec(0usize..4, 1..40),
        seed in 0u64..1000,
        stat in arb_stat(),
    ) {
        let result = KMeansResult {
            assignments,
            centroids: vec![vec![stat, 1.0], vec![2.0, stat]],
            inertia: stat.abs(),
        };
        assert_round_trips(&result);
        let options = SimPointOptions { seed, ..SimPointOptions::default() };
        assert_round_trips(&options);
        let data: Vec<Vec<f64>> =
            (0..20).map(|i| vec![f64::from(i % 5), f64::from(i % 3)]).collect();
        let set: SimPointSet = simpoint(&data, options).unwrap();
        assert_round_trips(&set);
    }
}

/// Non-finite floats cannot ride through `PartialEq`-based helpers; pin
/// their bit-exact hex fallback directly.
#[test]
fn non_finite_stats_round_trip_bit_exactly() {
    for f in [
        f64::NAN,
        -f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::from_bits(0x7ff8_dead_beef_0001), // NaN with payload
    ] {
        let record = IterationRecord {
            seq_len: 7,
            stat: f,
        };
        let json = serde::json::to_string(&record).unwrap();
        let back: IterationRecord = serde::json::from_str(&json).unwrap();
        assert_eq!(back.seq_len, 7);
        assert_eq!(back.stat.to_bits(), f.to_bits(), "{json}");
    }
}

/// The checkpoint format is JSON text: hand-written or truncated inputs
/// must fail loudly, never produce a half-restored value.
#[test]
fn malformed_json_is_rejected() {
    for bad in [
        "",
        "{",
        "{\"records\":}",
        "{\"records\":[{\"seq_len\":1}]}", // missing field
        "{\"records\":[{\"seq_len\":-1,\"stat\":0.0}]}", // u32 range
        "[1,2,3]",
    ] {
        assert!(
            serde::json::from_str::<EpochLog>(bad).is_err(),
            "`{bad}` should not deserialize"
        );
    }
}
