//! Properties of the `seqpoint serve` wire vocabulary: every frame
//! round-trips bit-exactly through NDJSON, and *no* input line — random
//! garbage, truncations of valid frames, adversarially deep nesting —
//! can panic the decoder (it must fail with an error the daemon can
//! answer, reusing the depth-limited JSON parser's error path).

use proptest::prelude::*;
use seqpoint_core::protocol::{
    decode_frame, encode_frame, JobClass, JobSpec, JobState, Request, Response, WorkerReply,
    WorkerTask,
};
use seqpoint_core::stream::StreamConfig;
use seqpoint_core::SeqPointConfig;

/// Assert a bit-exact round trip: decode(encode(x)) == x and
/// re-encoding reproduces the identical line.
fn assert_round_trips<T>(frame: &T)
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de> + PartialEq + std::fmt::Debug,
{
    let line = encode_frame(frame);
    assert!(!line.contains('\n'), "NDJSON frame spans lines: {line}");
    let back: T = decode_frame(&line).unwrap_or_else(|e| panic!("failed on `{line}`: {e}"));
    assert_eq!(&back, frame, "decoded frame diverged; line was `{line}`");
    assert_eq!(encode_frame(&back), line, "re-encoding changed the line");
}

/// Printable-ASCII text (quotes and backslashes included, so the
/// encoder's escaping is exercised), up to 40 characters.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u32..127, 0..40)
        .prop_map(|v| v.into_iter().filter_map(char::from_u32).collect())
}

/// Arbitrary Unicode scalars, newlines and controls included — the
/// garbage that may arrive on a public socket.
fn arb_garbage() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0xFFFF, 0..120)
        .prop_map(|v| v.into_iter().filter_map(char::from_u32).collect())
}

/// Short `[a-z0-9-]` identifiers for job names.
fn arb_id() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..37, 1..16).prop_map(|v| {
        v.into_iter()
            .map(|i| match i {
                0..=25 => (b'a' + i as u8) as char,
                26..=35 => (b'0' + (i - 26) as u8) as char,
                _ => '-',
            })
            .collect()
    })
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        (arb_id(), arb_id(), 1u64..100_000),
        (1u32..6, 0u64..1_000, 1u32..256),
        (1u32..16, 1u32..512),
        (1u64..10_000, 0.0f64..0.5, 1u32..64),
        (0u64..100, 0u64..500),
    )
        .prop_map(
            |(
                (model, dataset, samples),
                (config, seed, batch),
                (shards, round_len),
                (window, unseen, quant),
                (max_rounds, throttle_ms),
            )| JobSpec {
                model,
                dataset,
                samples,
                config,
                seed,
                batch,
                shards,
                round_len,
                stream: StreamConfig {
                    saturation_window: window,
                    unseen_threshold: unseen,
                    quantization: quant,
                    pipeline: SeqPointConfig::default(),
                },
                max_rounds: if max_rounds == 0 {
                    None
                } else {
                    Some(max_rounds)
                },
                throttle_ms,
                class: if seed % 2 == 0 {
                    JobClass::Interactive
                } else {
                    JobClass::Batch
                },
                client: format!("tenant-{}", seed % 3),
            },
        )
}

fn arb_state() -> impl Strategy<Value = JobState> {
    (0u32..6).prop_map(|i| match i {
        0 => JobState::Queued,
        1 => JobState::Running,
        2 => JobState::Paused,
        3 => JobState::Done,
        4 => JobState::Failed,
        _ => JobState::Cancelled,
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    ((0u32..11, arb_id(), 0u64..1 << 22), arb_spec()).prop_map(|((variant, job, pid), spec)| {
        match variant {
            0 => Request::Ping,
            1 => Request::Shutdown,
            10 => Request::Metrics,
            2 => Request::Submit {
                job: Some(job),
                spec,
            },
            3 => Request::Submit { job: None, spec },
            4 => Request::Status { job },
            5 => Request::Result {
                job,
                wait: pid % 2 == 0,
            },
            6 => Request::Cancel { job },
            7 => Request::Hello {
                version: (pid & 0xFF) as u32,
                token: if pid % 2 == 0 {
                    Some(job.clone())
                } else {
                    None
                },
                client: if pid % 3 == 0 { Some(job) } else { None },
            },
            8 => Request::Register { pid },
            _ => Request::WorkerHello { pid },
        }
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        (0u32..11, arb_id(), arb_text()),
        (1u32..5, 0u64..50, 0u64..50),
        proptest::collection::vec(0u64..1 << 22, 0..5),
        arb_state(),
    )
        .prop_map(
            |((variant, job, text), (version, queued, running), workers, state)| match variant {
                0 => Response::ShuttingDown,
                10 => Response::Metrics { text },
                1 => Response::Pong {
                    version,
                    queued,
                    running,
                    workers: workers.clone(),
                    cache_hits: queued * 3,
                    cache_entries: running,
                    fleet_idle: workers,
                    fleet_leases: queued + running,
                    fleet_reclaimed: queued % 2,
                },
                9 => Response::Welcome { version },
                2 => Response::Submitted { job },
                3 => Response::Rejected { reason: text },
                4 => Response::Status {
                    job,
                    state,
                    detail: text,
                    cache_hit: queued % 2 == 0,
                },
                5 => Response::Result { job, output: text },
                6 => Response::Failed { job, reason: text },
                7 => Response::Cancelled { job },
                _ => Response::Error { reason: text },
            },
        )
}

fn arb_worker_task() -> impl Strategy<Value = WorkerTask> {
    (
        (0u32..4, arb_id(), 1u32..6, arb_id()),
        (0u32..16, 1u32..500, 1u32..128),
        proptest::collection::vec((1u32..500, 1u32..128), 0..40),
    )
        .prop_map(
            |((variant, model, config, stat), (shard, seq_len, samples), batches)| match variant {
                0 => WorkerTask::Shutdown,
                1 => WorkerTask::Round {
                    model,
                    config,
                    stat,
                    shard,
                    batches,
                },
                3 => WorkerTask::Lease { job: stat },
                _ => WorkerTask::Profile {
                    model,
                    config,
                    seq_len,
                    samples,
                },
            },
        )
}

fn arb_worker_reply() -> impl Strategy<Value = WorkerReply> {
    ((0u32..3, 0u32..16, 0.0f64..1e6), arb_text(), arb_text()).prop_map(
        |((variant, shard, chunk_time_s), a, b)| match variant {
            0 => WorkerReply::Round {
                shard,
                tracker: a,
                chunk_time_s,
                shapes: b,
            },
            1 => WorkerReply::Profile { profile: a },
            _ => WorkerReply::Error { reason: a },
        },
    )
}

proptest! {
    #[test]
    fn requests_round_trip(request in arb_request()) {
        assert_round_trips(&request);
    }

    #[test]
    fn responses_round_trip(response in arb_response()) {
        assert_round_trips(&response);
    }

    #[test]
    fn worker_frames_round_trip(task in arb_worker_task(), reply in arb_worker_reply()) {
        assert_round_trips(&task);
        assert_round_trips(&reply);
    }

    /// No input line may panic the decoder — arbitrary bytes decode to
    /// `Err`, never abort the daemon's connection thread.
    #[test]
    fn garbage_lines_error_instead_of_panicking(line in arb_garbage()) {
        let _ = decode_frame::<Request>(&line);
        let _ = decode_frame::<Response>(&line);
        let _ = decode_frame::<WorkerTask>(&line);
        let _ = decode_frame::<WorkerReply>(&line);
    }

    /// Truncating a valid frame anywhere yields an error, not a panic or
    /// a silently different request (prefix-freeness of the framing).
    #[test]
    fn truncated_frames_error(request in arb_request(), cut in 0usize..100) {
        let line = encode_frame(&request);
        if cut < line.len() {
            let mut end = cut;
            while !line.is_char_boundary(end) {
                end -= 1;
            }
            let truncated = &line[..end];
            if truncated != line {
                prop_assert!(decode_frame::<Request>(truncated).is_err());
            }
        }
    }
}

/// Adversarially deep nesting exercises the depth-limited parser's
/// error path: a ~100k-deep array must fail fast, not overflow the
/// stack (a process abort, which no `Err` can report).
#[test]
fn deeply_nested_requests_are_rejected_not_fatal() {
    let depth = 100_000;
    let mut line = String::with_capacity(2 * depth + 20);
    line.push_str("{\"Submit\":");
    for _ in 0..depth {
        line.push('[');
    }
    for _ in 0..depth {
        line.push(']');
    }
    line.push('}');
    let err = decode_frame::<Request>(&line).unwrap_err();
    assert!(
        err.to_string().contains("depth") || err.to_string().contains("nest"),
        "expected a depth-limit error, got: {err}"
    );
}

/// The documented submit line from the README parses.
#[test]
fn readme_submit_line_parses() {
    let line = "{\"Submit\":{\"job\":null,\"spec\":{\"model\":\"gnmt\",\"dataset\":\"iwslt15\",\
                \"samples\":6000,\"batch\":16,\"shards\":3,\"round_len\":32}}}";
    let request: Request = decode_frame(line).unwrap();
    let Request::Submit { job: None, spec } = request else {
        panic!("wrong variant");
    };
    assert_eq!(spec.model, "gnmt");
    assert_eq!(spec.round_len, 32);
    let spec = spec.normalize();
    assert_eq!(spec.config, 1, "omitted fields normalize to CLI defaults");
    assert_eq!(spec.round_len, 32, "provided fields survive normalization");
}
