//! Property-based invariants of the SeqPoint methodology.

use proptest::prelude::*;
use seqpoint_core::binning::bin_profiles;
use seqpoint_core::stream::{select_streaming, StreamConfig};
use seqpoint_core::{BaselineKind, EpochLog, SeqPointConfig, SeqPointPipeline, SeqPointSet};

fn arb_log() -> impl Strategy<Value = EpochLog> {
    proptest::collection::vec((1u32..400, 0.01f64..10.0), 1..500).prop_map(EpochLog::from_pairs)
}

/// Streams for the sharded-selection properties: a narrower SL space so
/// saturation is reachable, still long-tailed enough to exercise the
/// count-only phase's on-demand measurements.
fn arb_stream() -> impl Strategy<Value = EpochLog> {
    proptest::collection::vec((1u32..120, 0.01f64..10.0), 1..800).prop_map(EpochLog::from_pairs)
}

/// A pipeline configuration that converges on any `arb_stream` log
/// (`max_k` above the SL-space size guarantees an exact fallback).
fn stream_pipeline() -> SeqPointConfig {
    SeqPointConfig {
        max_k: 512,
        ..SeqPointConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bins_partition_the_iterations(log in arb_log(), k in 1u32..40) {
        let profiles = log.sl_profiles();
        let bins = bin_profiles(&profiles, k).unwrap();
        // Every iteration is counted exactly once.
        let total: u64 = bins.iter().map(|b| b.weight()).sum();
        prop_assert_eq!(total as usize, log.len());
        // Bins are disjoint, ordered, and contain only in-range profiles.
        for w in bins.windows(2) {
            prop_assert!(w[0].hi < w[1].lo);
        }
        for b in &bins {
            prop_assert!(!b.is_empty());
            for p in &b.profiles {
                prop_assert!(p.seq_len >= b.lo && p.seq_len <= b.hi);
            }
        }
        prop_assert!(bins.len() <= k as usize);
    }

    #[test]
    fn seqpoint_weights_always_cover_the_epoch(log in arb_log(), k in 1u32..40) {
        let profiles = log.sl_profiles();
        let bins = bin_profiles(&profiles, k).unwrap();
        let set = SeqPointSet::select(&bins);
        prop_assert_eq!(set.total_weight() as usize, log.len());
        // Every representative is an observed SL.
        for p in set.points() {
            prop_assert!(log.mean_stat_of(p.seq_len).is_some());
        }
    }

    #[test]
    fn representative_stat_is_within_bin_extremes(log in arb_log(), k in 1u32..20) {
        let profiles = log.sl_profiles();
        let bins = bin_profiles(&profiles, k).unwrap();
        let set = SeqPointSet::select(&bins);
        for (bin, point) in bins.iter().zip(set.points()) {
            let lo = bin.profiles.iter().map(|p| p.mean_stat).fold(f64::INFINITY, f64::min);
            let hi = bin.profiles.iter().map(|p| p.mean_stat).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(point.stat >= lo - 1e-12 && point.stat <= hi + 1e-12);
            prop_assert!(point.seq_len >= bin.lo && point.seq_len <= bin.hi);
        }
    }

    #[test]
    fn pipeline_projection_error_monotone_resources(log in arb_log()) {
        // Run with a generous threshold and with max_k = span: the error
        // with the span-sized k is (near) zero.
        let span_k = {
            let p = log.sl_profiles();
            p.last().unwrap().seq_len - p.first().unwrap().seq_len + 1
        };
        let exact = SeqPointPipeline::with_config(SeqPointConfig {
            initial_k: span_k,
            max_k: span_k,
            error_threshold_pct: 100.0,
            sl_threshold_n: 0,
        })
        .run(&log)
        .unwrap();
        prop_assert!(exact.self_error_pct() < 1e-6, "err = {}", exact.self_error_pct());
        prop_assert_eq!(exact.seqpoints().len(), log.unique_sl_count());
    }

    #[test]
    fn pipeline_satisfies_its_threshold_when_it_returns(log in arb_log(), e in 0.1f64..20.0) {
        let result = SeqPointPipeline::with_config(SeqPointConfig {
            error_threshold_pct: e,
            max_k: 512,
            ..SeqPointConfig::default()
        })
        .run(&log);
        if let Ok(a) = result {
            prop_assert!(a.self_error_pct() <= e + 1e-9);
            prop_assert!(a.seqpoints().len() <= log.unique_sl_count());
        }
    }

    #[test]
    fn projection_scales_linearly_with_stats(log in arb_log(), factor in 0.1f64..10.0) {
        // Projecting with uniformly scaled statistics scales the
        // projection by the same factor — the property that makes
        // SeqPoints transferable across clock-scaled configurations.
        let a = SeqPointPipeline::with_config(SeqPointConfig {
            error_threshold_pct: 50.0,
            ..SeqPointConfig::default()
        })
        .run(&log)
        .unwrap();
        let base = a.seqpoints().project_total();
        let scaled = a
            .seqpoints()
            .project_total_with(|sl| log.mean_stat_of(sl).unwrap() * factor);
        prop_assert!((scaled - base * factor).abs() <= 1e-9 * base.abs().max(1.0) * factor);
    }

    #[test]
    fn baselines_project_finite_totals(log in arb_log()) {
        for kind in BaselineKind::paper_set() {
            let sel = kind.select(&log).unwrap();
            let pred = sel.project_total_with(|sl| log.mean_stat_of(sl).unwrap_or(0.0));
            prop_assert!(pred.is_finite());
            prop_assert!(pred >= 0.0);
            prop_assert!(!sel.seq_lens().is_empty());
        }
    }

    #[test]
    fn worst_baseline_bounds_single_sl_choices(log in arb_log()) {
        let actual = log.actual_total();
        let n = log.len() as f64;
        let worst = BaselineKind::Worst.select(&log).unwrap();
        let worst_err = (worst.project_total_with(|sl| log.mean_stat_of(sl).unwrap()) - actual).abs();
        for p in log.sl_profiles() {
            let err = (p.mean_stat * n - actual).abs();
            prop_assert!(err <= worst_err + 1e-9);
        }
    }

    #[test]
    fn sharded_merge_selection_equals_single_shard(
        log in arb_stream(),
        shards in 2usize..9,
        round_len in 1usize..100,
        window in 1u64..300,
        quantization in 1u32..16,
    ) {
        let config = StreamConfig {
            saturation_window: window,
            quantization,
            pipeline: stream_pipeline(),
            ..StreamConfig::default()
        };
        let single = select_streaming(&log, 1, round_len, &config).unwrap();
        let sharded = select_streaming(&log, shards, round_len, &config).unwrap();
        // The stop decision sees the same stream prefix either way …
        prop_assert_eq!(sharded.stopped_at(), single.stopped_at());
        prop_assert_eq!(
            sharded.iterations_measured(),
            single.iterations_measured()
        );
        prop_assert_eq!(sharded.rounds(), single.rounds());
        // … so the selections are identical: same SLs, same weights, and
        // — thanks to the Neumaier-compensated per-SL sums — bit-exact
        // statistics, not merely equality up to merge-order rounding.
        prop_assert_eq!(sharded.seqpoints().len(), single.seqpoints().len());
        for (a, b) in sharded
            .seqpoints()
            .points()
            .iter()
            .zip(single.seqpoints().points())
        {
            prop_assert_eq!(a.seq_len, b.seq_len);
            prop_assert_eq!(a.weight, b.weight);
            prop_assert_eq!(
                a.stat.to_bits(),
                b.stat.to_bits(),
                "SL {}: {} vs {}",
                a.seq_len,
                a.stat,
                b.stat
            );
        }
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run(
        log in arb_stream(),
        shards in 1usize..6,
        round_len in 1usize..80,
        window in 1u64..250,
        kill_fraction in 0.0f64..1.0,
    ) {
        use seqpoint_core::online::OnlineSlTracker;
        use seqpoint_core::StreamingSelector;

        let config = StreamConfig {
            saturation_window: window,
            pipeline: stream_pipeline(),
            ..StreamConfig::default()
        };
        let uninterrupted = select_streaming(&log, shards, round_len, &config).unwrap();
        let total_rounds = log.records().len().div_ceil(round_len);
        let kill_after = ((total_rounds as f64 * kill_fraction) as usize).max(1);

        // Measure up to the kill point, checkpoint, restore, finish.
        let mut selector = StreamingSelector::with_config(config);
        let mut consumed = 0;
        for block in log.records().chunks(round_len).take(kill_after) {
            let mut round = OnlineSlTracker::new();
            for r in block {
                round.observe(r.seq_len, r.stat);
            }
            consumed += block.len();
            if selector.ingest_round(&round) {
                break;
            }
        }
        let mut resumed = StreamingSelector::restore(&selector.checkpoint()).unwrap();
        prop_assert_eq!(&resumed, &selector);
        if !resumed.should_stop() {
            for block in log.records()[consumed..].chunks(round_len) {
                let mut round = OnlineSlTracker::new();
                for r in block {
                    round.observe(r.seq_len, r.stat);
                }
                consumed += block.len();
                if resumed.ingest_round(&round) {
                    break;
                }
            }
        }
        for r in &log.records()[consumed..] {
            resumed.observe_replayed(r.seq_len, r.stat);
        }
        let finished = resumed.finalize().unwrap();
        prop_assert_eq!(finished.stopped_at(), uninterrupted.stopped_at());
        prop_assert_eq!(
            finished.iterations_measured(),
            uninterrupted.iterations_measured()
        );
        prop_assert_eq!(finished.iterations_total(), uninterrupted.iterations_total());
        for (a, b) in finished
            .seqpoints()
            .points()
            .iter()
            .zip(uninterrupted.seqpoints().points())
        {
            prop_assert_eq!(a.seq_len, b.seq_len);
            prop_assert_eq!(a.weight, b.weight);
            prop_assert_eq!(a.stat.to_bits(), b.stat.to_bits());
        }
    }

    #[test]
    fn early_stop_never_fires_before_the_window(
        log in arb_stream(),
        shards in 1usize..6,
        round_len in 1usize..50,
        window in 1u64..250,
        unseen in 0.0f64..0.5,
    ) {
        let config = StreamConfig {
            saturation_window: window,
            unseen_threshold: unseen,
            pipeline: stream_pipeline(),
            ..StreamConfig::default()
        };
        let streamed = select_streaming(&log, shards, round_len, &config).unwrap();
        // The stop may never fire before a full window has been measured.
        if let Some(stopped_at) = streamed.stopped_at() {
            prop_assert!(stopped_at >= window);
        } else {
            prop_assert_eq!(streamed.iterations_measured(), log.len() as u64);
        }
        // Whatever the stop did, the streamed counts cover the epoch.
        prop_assert_eq!(streamed.iterations_total(), log.len() as u64);
        prop_assert_eq!(streamed.seqpoints().total_weight(), log.len() as u64);
        prop_assert!(streamed.iterations_measured() <= log.len() as u64);
    }
}
