//! Keeps `docs/protocol.md` honest: every protocol frame variant must
//! be documented, and the documented version history must end at the
//! current [`PROTOCOL_VERSION`].
//!
//! The variant name lists below are guarded by exhaustive matches with
//! no wildcard arm — adding a variant to any frame enum breaks this
//! test's *compilation* until the list (and therefore the doc) is
//! updated, so the doc cannot silently fall behind the wire.

use seqpoint_core::protocol::{
    JobClass, JobState, Request, Response, WorkerReply, WorkerTask, PROTOCOL_VERSION,
};

/// The doc variant inventory for one enum: every name here must appear
/// in `docs/protocol.md` as the qualified form `Enum::Variant`.
struct Inventory {
    enum_name: &'static str,
    variants: &'static [&'static str],
}

// Each `_exhaustive_*` function exists only for its match expression:
// no wildcard arm, so a new variant is a compile error pointing here,
// next to the list that must gain the new name.

fn _exhaustive_request(r: &Request) -> &'static str {
    match r {
        Request::Hello { .. } => "Hello",
        Request::Ping => "Ping",
        Request::Submit { .. } => "Submit",
        Request::Status { .. } => "Status",
        Request::Result { .. } => "Result",
        Request::Cancel { .. } => "Cancel",
        Request::Shutdown => "Shutdown",
        Request::WorkerHello { .. } => "WorkerHello",
        Request::Register { .. } => "Register",
        Request::Metrics => "Metrics",
    }
}

const REQUEST: Inventory = Inventory {
    enum_name: "Request",
    variants: &[
        "Hello",
        "Ping",
        "Submit",
        "Status",
        "Result",
        "Cancel",
        "Shutdown",
        "WorkerHello",
        "Register",
        "Metrics",
    ],
};

fn _exhaustive_response(r: &Response) -> &'static str {
    match r {
        Response::Welcome { .. } => "Welcome",
        Response::Pong { .. } => "Pong",
        Response::Submitted { .. } => "Submitted",
        Response::Rejected { .. } => "Rejected",
        Response::Status { .. } => "Status",
        Response::Result { .. } => "Result",
        Response::Failed { .. } => "Failed",
        Response::Cancelled { .. } => "Cancelled",
        Response::Metrics { .. } => "Metrics",
        Response::ShuttingDown => "ShuttingDown",
        Response::Error { .. } => "Error",
    }
}

const RESPONSE: Inventory = Inventory {
    enum_name: "Response",
    variants: &[
        "Welcome",
        "Pong",
        "Submitted",
        "Rejected",
        "Status",
        "Result",
        "Failed",
        "Cancelled",
        "Metrics",
        "ShuttingDown",
        "Error",
    ],
};

fn _exhaustive_worker_task(t: &WorkerTask) -> &'static str {
    match t {
        WorkerTask::Round { .. } => "Round",
        WorkerTask::Profile { .. } => "Profile",
        WorkerTask::Lease { .. } => "Lease",
        WorkerTask::Shutdown => "Shutdown",
    }
}

const WORKER_TASK: Inventory = Inventory {
    enum_name: "WorkerTask",
    variants: &["Round", "Profile", "Lease", "Shutdown"],
};

fn _exhaustive_worker_reply(r: &WorkerReply) -> &'static str {
    match r {
        WorkerReply::Round { .. } => "Round",
        WorkerReply::Profile { .. } => "Profile",
        WorkerReply::Error { .. } => "Error",
    }
}

const WORKER_REPLY: Inventory = Inventory {
    enum_name: "WorkerReply",
    variants: &["Round", "Profile", "Error"],
};

fn _exhaustive_job_state(s: JobState) -> &'static str {
    match s {
        JobState::Queued => "Queued",
        JobState::Running => "Running",
        JobState::Paused => "Paused",
        JobState::Done => "Done",
        JobState::Failed => "Failed",
        JobState::Cancelled => "Cancelled",
    }
}

const JOB_STATES: &[&str] = &["Queued", "Running", "Paused", "Done", "Failed", "Cancelled"];

fn _exhaustive_job_class(c: JobClass) -> &'static str {
    match c {
        JobClass::Interactive => "Interactive",
        JobClass::Batch => "Batch",
    }
}

fn protocol_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/protocol.md");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn every_frame_variant_is_documented() {
    let doc = protocol_doc();
    for inv in [REQUEST, RESPONSE, WORKER_TASK, WORKER_REPLY] {
        for variant in inv.variants {
            let qualified = format!("{}::{variant}", inv.enum_name);
            assert!(
                doc.contains(&qualified),
                "docs/protocol.md does not mention `{qualified}`"
            );
        }
    }
}

#[test]
fn every_job_state_is_documented() {
    let doc = protocol_doc();
    for state in JOB_STATES {
        assert!(
            doc.contains(state),
            "docs/protocol.md does not mention the `{state}` job state"
        );
    }
}

#[test]
fn job_classes_are_documented_by_label() {
    let doc = protocol_doc();
    for class in [JobClass::Interactive, JobClass::Batch] {
        let label = class.label();
        assert!(
            doc.to_lowercase().contains(label),
            "docs/protocol.md does not mention the `{label}` class"
        );
    }
}

#[test]
fn version_history_reaches_the_current_version() {
    let doc = protocol_doc();
    // The version-history table documents each version as a `| N |` row.
    for version in 1..=PROTOCOL_VERSION {
        let row = format!("| {version} |");
        assert!(
            doc.contains(&row),
            "docs/protocol.md version history is missing version {version}"
        );
    }
    let future = format!("| {} |", PROTOCOL_VERSION + 1);
    assert!(
        !doc.contains(&future),
        "docs/protocol.md documents a version the code does not define"
    );
}
