//! Microbenches of the SeqPoint core algorithms: per-SL aggregation,
//! binning, selection, the full refinement pipeline, the baselines, and
//! the k-means comparator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqpoint_core::binning::bin_profiles;
use seqpoint_core::kmeans::kmeans;
use seqpoint_core::{BaselineKind, EpochLog, SeqPointPipeline, SeqPointSet};
use std::hint::black_box;

fn synthetic_log(iterations: usize, unique_sls: u32, seed: u64) -> EpochLog {
    let mut rng = StdRng::seed_from_u64(seed);
    EpochLog::from_pairs((0..iterations).map(|_| {
        let sl = 1 + rng.gen_range(0..unique_sls);
        (sl, 0.1 + f64::from(sl) * 0.01 + rng.gen::<f64>() * 0.002)
    }))
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("core");
    for &iters in &[500usize, 5_000, 50_000] {
        let log = synthetic_log(iters, 200, 1);
        group.bench_with_input(BenchmarkId::new("sl_profiles", iters), &log, |b, log| {
            b.iter(|| black_box(log.sl_profiles().len()))
        });
        group.bench_with_input(BenchmarkId::new("pipeline_full", iters), &log, |b, log| {
            b.iter(|| {
                black_box(
                    SeqPointPipeline::new()
                        .run(log)
                        .expect("converges")
                        .seqpoints()
                        .len(),
                )
            })
        });
    }
    let log = synthetic_log(5_000, 200, 2);
    let profiles = log.sl_profiles();
    for &k in &[5u32, 15, 50] {
        group.bench_with_input(BenchmarkId::new("bin_and_select", k), &k, |b, &k| {
            b.iter(|| {
                let bins = bin_profiles(&profiles, k).expect("valid");
                black_box(SeqPointSet::select(&bins).len())
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    let log = synthetic_log(5_000, 200, 3);
    for kind in BaselineKind::paper_set() {
        group.bench_function(kind.label(), |b| {
            b.iter(|| black_box(kind.select(&log).expect("non-empty").seq_lens().len()))
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(4);
    let data: Vec<Vec<f64>> = (0..2_000)
        .map(|_| (0..9).map(|_| rng.gen::<f64>()).collect())
        .collect();
    for &k in &[5usize, 15] {
        group.bench_with_input(BenchmarkId::new("kmeans_2000x9", k), &k, |b, &k| {
            b.iter(|| black_box(kmeans(&data, k, 7).expect("valid").inertia))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_baselines, bench_kmeans);
criterion_main!(benches);
