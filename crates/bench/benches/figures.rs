//! Criterion benches that regenerate every *figure* of the paper's
//! evaluation (Figs. 3–9, 11–16). Each bench times one regeneration at
//! quick scale; the figure data itself is archived by the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use seqpoint_experiments::{
    fig03, fig04, fig05, fig06, fig07, fig08, fig09, projection, sensitivity, speedup, Net,
    Workloads,
};
use std::hint::black_box;

fn bench_motivation_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig03_cnn_vs_sqnn", |b| {
        b.iter(|| {
            let mut w = Workloads::quick();
            black_box(fig03::run(&mut w).cnn_cv_pct)
        })
    });
    group.bench_function("fig04_arch_stats", |b| {
        let mut w = Workloads::quick();
        w.profile(Net::Ds2, 0);
        w.profile(Net::Gnmt, 0);
        b.iter(|| black_box(fig04::run(&mut w).nets.len()))
    });
    group.bench_function("fig05_kernel_overlap", |b| {
        let mut w = Workloads::quick();
        b.iter(|| black_box(fig05::run(&mut w).rows.len()))
    });
    group.bench_function("fig06_kernel_distribution", |b| {
        let mut w = Workloads::quick();
        b.iter(|| black_box(fig06::run(&mut w).rows.len()))
    });
    group.bench_function("fig07_sl_histograms", |b| {
        let mut w = Workloads::quick();
        b.iter(|| black_box(fig07::run(&mut w).nets.len()))
    });
    group.bench_function("fig08_profile_similarity", |b| {
        let mut w = Workloads::quick();
        b.iter(|| black_box(fig08::run(&mut w).close_pair_distance))
    });
    group.bench_function("fig09_runtime_vs_sl", |b| {
        let mut w = Workloads::quick();
        b.iter(|| black_box(fig09::run(&mut w).nets[0].r_squared))
    });
    group.finish();
}

fn bench_evaluation_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig11_ds2_time_error", |b| {
        let mut w = Workloads::quick();
        for i in 0..5 {
            w.profile(Net::Ds2, i);
        }
        b.iter(|| black_box(projection::run(&mut w, Net::Ds2).seqpoint_count))
    });
    group.bench_function("fig12_gnmt_time_error", |b| {
        let mut w = Workloads::quick();
        for i in 0..5 {
            w.profile(Net::Gnmt, i);
        }
        b.iter(|| black_box(projection::run(&mut w, Net::Gnmt).seqpoint_count))
    });
    group.bench_function("fig13_gnmt_sensitivity", |b| {
        let mut w = Workloads::quick();
        b.iter(|| black_box(sensitivity::run(&mut w, Net::Gnmt).variation_pp))
    });
    group.bench_function("fig14_ds2_sensitivity", |b| {
        let mut w = Workloads::quick();
        b.iter(|| black_box(sensitivity::run(&mut w, Net::Ds2).variation_pp))
    });
    group.bench_function("fig15_ds2_speedup_error", |b| {
        let mut w = Workloads::quick();
        for i in 0..5 {
            w.profile(Net::Ds2, i);
        }
        b.iter(|| black_box(speedup::run(&mut w, Net::Ds2).actual_uplift_pct))
    });
    group.bench_function("fig16_gnmt_speedup_error", |b| {
        let mut w = Workloads::quick();
        for i in 0..5 {
            w.profile(Net::Gnmt, i);
        }
        b.iter(|| black_box(speedup::run(&mut w, Net::Gnmt).actual_uplift_pct))
    });
    group.finish();
}

criterion_group!(benches, bench_motivation_figures, bench_evaluation_figures);
criterion_main!(benches);
