//! Ablation benches for the reproduction's open design choices:
//!
//! * representative rule: closest-to-average (paper) vs bin-median vs
//!   most-frequent member;
//! * binning: equal-width SL ranges (paper) vs equal-population
//!   (quantile) bins;
//! * initial `k` / error-threshold sweep (profiling cost vs accuracy);
//! * `prior`'s warmup/window sensitivity.
//!
//! Besides timing each alternative, the bench prints the accuracy each
//! achieves on the quick-scale GNMT epoch so the trade-off is visible in
//! the bench log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqpoint_bench::{quantile_bins, select_with_rule, self_error_pct, RepresentativeRule};
use seqpoint_core::binning::bin_profiles;
use seqpoint_core::{BaselineKind, EpochLog, SeqPointConfig, SeqPointPipeline};
use seqpoint_experiments::{Net, Workloads};
use std::hint::black_box;

fn gnmt_log() -> EpochLog {
    let mut w = Workloads::quick();
    w.profile(Net::Gnmt, 0).to_epoch_log()
}

fn bench_representative_rules(c: &mut Criterion) {
    let log = gnmt_log();
    let profiles = log.sl_profiles();
    let bins = bin_profiles(&profiles, 10).expect("valid");
    let mut group = c.benchmark_group("ablation_representative");
    for rule in [
        RepresentativeRule::ClosestToAverage,
        RepresentativeRule::MedianStat,
        RepresentativeRule::MostFrequent,
    ] {
        let err = self_error_pct(&select_with_rule(&bins, rule), &log);
        eprintln!("[ablation] representative {rule:?}: self error {err:.4}%");
        group.bench_with_input(
            BenchmarkId::new("select", format!("{rule:?}")),
            &rule,
            |b, &rule| b.iter(|| black_box(select_with_rule(&bins, rule).len())),
        );
    }
    group.finish();
}

fn bench_binning_strategies(c: &mut Criterion) {
    let log = gnmt_log();
    let profiles = log.sl_profiles();
    let mut group = c.benchmark_group("ablation_binning");
    for &k in &[5u32, 10, 20] {
        let equal_width = bin_profiles(&profiles, k).expect("valid");
        let quantile = quantile_bins(&profiles, k);
        let ew_err = self_error_pct(
            &select_with_rule(&equal_width, RepresentativeRule::ClosestToAverage),
            &log,
        );
        let q_err = self_error_pct(
            &select_with_rule(&quantile, RepresentativeRule::ClosestToAverage),
            &log,
        );
        eprintln!("[ablation] k={k}: equal-width {ew_err:.4}% vs quantile {q_err:.4}%");
        group.bench_with_input(BenchmarkId::new("equal_width", k), &k, |b, &k| {
            b.iter(|| black_box(bin_profiles(&profiles, k).expect("valid").len()))
        });
        group.bench_with_input(BenchmarkId::new("quantile", k), &k, |b, &k| {
            b.iter(|| black_box(quantile_bins(&profiles, k).len()))
        });
    }
    group.finish();
}

fn bench_threshold_sweep(c: &mut Criterion) {
    let log = gnmt_log();
    let mut group = c.benchmark_group("ablation_threshold");
    group.sample_size(20);
    for &e in &[1.0f64, 0.1, 0.01] {
        let cfg = SeqPointConfig {
            error_threshold_pct: e,
            max_k: 256,
            ..SeqPointConfig::default()
        };
        if let Ok(a) = SeqPointPipeline::with_config(cfg).run(&log) {
            eprintln!(
                "[ablation] e={e}%: k={} points={} err={:.4}%",
                a.k(),
                a.seqpoints().len(),
                a.self_error_pct()
            );
        }
        group.bench_with_input(
            BenchmarkId::new("pipeline_e", format!("{e}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    black_box(
                        SeqPointPipeline::with_config(*cfg)
                            .run(&log)
                            .ok()
                            .map(|a| a.k()),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_prior_window_sensitivity(c: &mut Criterion) {
    let log = gnmt_log();
    let actual = log.actual_total();
    let n = log.len() as f64;
    let mut group = c.benchmark_group("ablation_prior");
    for &(warmup, window) in &[(10usize, 50usize), (50, 50), (150, 50), (10, 200)] {
        let kind = BaselineKind::Prior { warmup, window };
        let sel = kind.select(&log).expect("non-empty");
        let pred = sel.project_total_with(|sl| log.mean_stat_of(sl).expect("observed"));
        eprintln!(
            "[ablation] prior warmup={warmup} window={window}: error {:.2}%",
            ((pred - actual) / actual).abs() * 100.0
        );
        let _ = n;
        group.bench_with_input(
            BenchmarkId::new("prior", format!("w{warmup}_n{window}")),
            &kind,
            |b, kind| b.iter(|| black_box(kind.select(&log).expect("non-empty").seq_lens().len())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_representative_rules,
    bench_binning_strategies,
    bench_threshold_sweep,
    bench_prior_window_sensitivity
);
criterion_main!(benches);
