//! Microbenches of the GPU-simulator substrate: kernel timing, trace
//! execution, trace generation, and full-epoch profiling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::gemm::GemmShape;
use gpu_sim::{AutotuneTable, Device, GpuConfig};
use sqnn::models::{ds2, gnmt};
use sqnn::IterationShape;
use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
use sqnn_profiler::Profiler;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let cfg = GpuConfig::vega_fe();
    let mut tuner = AutotuneTable::new();
    let kernel = tuner.gemm(&cfg, GemmShape::new(4096, 1024, 6400));
    group.bench_function("kernel_time", |b| {
        b.iter(|| black_box(gpu_sim::kernel_time(&cfg, &kernel).time_s))
    });
    group.bench_function("gemm_autotune_cold", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let mut t = AutotuneTable::new();
            black_box(t.gemm(&cfg, GemmShape::new(4096, 1024, 64 + n)))
        })
    });
    group.bench_function("energy_model", |b| {
        let device = Device::new(cfg.clone());
        let profile = device.run_trace(std::slice::from_ref(&kernel));
        let model = gpu_sim::energy::EnergyModel::default();
        b.iter(|| black_box(model.trace_energy_j(&cfg, &profile)))
    });
    group.bench_function("trace_format_round_trip", |b| {
        let mut t = AutotuneTable::new();
        let trace: Vec<_> = (0..100)
            .map(|i| t.gemm(&cfg, GemmShape::new(256 + i, 256, 256)))
            .collect();
        b.iter(|| {
            let mut buf = Vec::new();
            gpu_sim::trace_format::write_trace(&mut buf, &trace).expect("write");
            black_box(
                gpu_sim::trace_format::read_trace(&buf[..])
                    .expect("read")
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("traces");
    group.sample_size(20);
    let cfg = GpuConfig::vega_fe();
    let device = Device::new(cfg.clone());
    for (name, net) in [("gnmt", gnmt()), ("ds2", ds2())] {
        let mut tuner = AutotuneTable::new();
        let shape = IterationShape::new(64, 100);
        let trace = net.iteration_trace(&shape, &cfg, &mut tuner);
        group.bench_with_input(
            BenchmarkId::new("generate_iteration_trace", name),
            &net,
            |b, net| {
                let mut tuner = AutotuneTable::new();
                b.iter(|| black_box(net.iteration_trace(&shape, &cfg, &mut tuner).len()))
            },
        );
        group.bench_with_input(BenchmarkId::new("run_trace", name), &trace, |b, trace| {
            b.iter(|| black_box(device.run_trace(trace).total_time_s()))
        });
    }
    group.finish();
}

fn bench_epoch_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    let corpus = Corpus::iwslt15_like(3_000, 5);
    let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), 5).expect("non-empty");
    let device = Device::new(GpuConfig::vega_fe());
    let net = gnmt();
    group.bench_function("profile_epoch_gnmt_3k", |b| {
        b.iter(|| {
            black_box(
                Profiler::new()
                    .profile_epoch(&net, &plan, &device)
                    .expect("non-empty")
                    .training_time_s(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_traces, bench_epoch_profiling);
criterion_main!(benches);
