//! Criterion benches regenerating the paper's tables (Table I, Table II)
//! and the Section VI-F / VII-C / VII summary tables.

use criterion::{criterion_group, criterion_main, Criterion};
use seqpoint_experiments::{
    extensions, kmeans_ablation, profiling_speedup, table1, table2, Net, Workloads,
};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_gemm_dims", |b| {
        let mut w = Workloads::quick();
        b.iter(|| black_box(table1::run(&mut w).rows.len()))
    });
    group.bench_function("table2_configs", |b| {
        let w = Workloads::quick();
        b.iter(|| black_box(table2::run(&w).table.row_count()))
    });
    group.bench_function("profiling_speedup_vi_f", |b| {
        let mut w = Workloads::quick();
        w.profile(Net::Ds2, 0);
        w.profile(Net::Gnmt, 0);
        b.iter(|| black_box(profiling_speedup::run(&mut w).nets.len()))
    });
    group.bench_function("kmeans_vs_binning_vii_c", |b| {
        let mut w = Workloads::quick();
        w.profile(Net::Ds2, 0);
        w.profile(Net::Gnmt, 0);
        b.iter(|| black_box(kmeans_ablation::run(&mut w).rows.len()))
    });
    group.bench_function("extensions_vii", |b| {
        let mut w = Workloads::quick();
        b.iter(|| black_box(extensions::run(&mut w).rows.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
