//! # seqpoint-bench — benchmark harness and ablation strategies
//!
//! The Criterion benches under `benches/` regenerate every table and
//! figure of the paper (timing the regeneration), benchmark the core
//! algorithms and the simulator, and run ablation studies over the
//! reproduction's open design choices. This library hosts the
//! alternative design-choice implementations the ablations compare
//! against:
//!
//! * representative selection within a bin: closest-to-average (the
//!   paper's choice), the median-SL member, or the most frequent member;
//! * binning: equal-width SL ranges (the paper's choice) or
//!   equal-population (quantile) bins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use seqpoint_core::binning::Bin;
use seqpoint_core::{EpochLog, SeqPoint, SeqPointSet, SlProfile};

/// How a bin's representative sequence length is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepresentativeRule {
    /// The SL whose statistic is closest to the bin's weighted average —
    /// the paper's rule (Fig. 10, step 3).
    ClosestToAverage,
    /// The member SL with the median statistic.
    MedianStat,
    /// The member SL observed most often.
    MostFrequent,
}

/// Select one SeqPoint per bin under the given rule.
pub fn select_with_rule(bins: &[Bin], rule: RepresentativeRule) -> SeqPointSet {
    if rule == RepresentativeRule::ClosestToAverage {
        return SeqPointSet::select(bins);
    }
    let mut points = Vec::new();
    for bin in bins {
        if bin.is_empty() {
            continue;
        }
        let repr: &SlProfile = match rule {
            RepresentativeRule::ClosestToAverage => unreachable!("handled above"),
            RepresentativeRule::MedianStat => {
                let mut sorted: Vec<&SlProfile> = bin.profiles.iter().collect();
                sorted.sort_by(|a, b| a.mean_stat.total_cmp(&b.mean_stat));
                sorted[sorted.len() / 2]
            }
            RepresentativeRule::MostFrequent => bin
                .profiles
                .iter()
                .max_by(|a, b| a.count.cmp(&b.count).then(b.seq_len.cmp(&a.seq_len)))
                .expect("bin is non-empty"),
        };
        points.push(SeqPoint {
            seq_len: repr.seq_len,
            stat: repr.mean_stat,
            weight: bin.weight(),
        });
    }
    SeqPointSet::from_points(points)
}

/// Split profiles into `k` equal-*population* bins (quantiles over
/// iterations) instead of the paper's equal-width SL ranges.
pub fn quantile_bins(profiles: &[SlProfile], k: u32) -> Vec<Bin> {
    if profiles.is_empty() || k == 0 {
        return Vec::new();
    }
    let total: u64 = profiles.iter().map(|p| p.count).sum();
    let per_bin = (total as f64 / f64::from(k)).max(1.0);
    let mut bins: Vec<Bin> = Vec::new();
    let mut current: Vec<SlProfile> = Vec::new();
    let mut filled = 0.0;
    for p in profiles {
        current.push(*p);
        filled += p.count as f64;
        if filled >= per_bin && bins.len() + 1 < k as usize {
            bins.push(Bin {
                lo: current.first().expect("non-empty").seq_len,
                hi: current.last().expect("non-empty").seq_len,
                profiles: std::mem::take(&mut current),
            });
            filled = 0.0;
        }
    }
    if !current.is_empty() {
        bins.push(Bin {
            lo: current.first().expect("non-empty").seq_len,
            hi: current.last().expect("non-empty").seq_len,
            profiles: current,
        });
    }
    bins
}

/// Identification-time projection error (%) of a selection against a log.
pub fn self_error_pct(set: &SeqPointSet, log: &EpochLog) -> f64 {
    let actual = log.actual_total();
    if actual == 0.0 {
        return 0.0;
    }
    ((set.project_total() - actual) / actual).abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpoint_core::binning::bin_profiles;

    fn log() -> EpochLog {
        EpochLog::from_pairs((0..300).map(|i| {
            let sl = 5 + (i * 13) % 140;
            (sl, 0.2 + f64::from(sl) * 0.012)
        }))
    }

    #[test]
    fn all_rules_cover_every_iteration() {
        let l = log();
        let bins = bin_profiles(&l.sl_profiles(), 8).unwrap();
        for rule in [
            RepresentativeRule::ClosestToAverage,
            RepresentativeRule::MedianStat,
            RepresentativeRule::MostFrequent,
        ] {
            let set = select_with_rule(&bins, rule);
            assert_eq!(set.total_weight() as usize, l.len(), "{rule:?}");
        }
    }

    #[test]
    fn closest_to_average_is_at_least_as_accurate_as_alternatives_here() {
        let l = log();
        let bins = bin_profiles(&l.sl_profiles(), 8).unwrap();
        let paper = self_error_pct(
            &select_with_rule(&bins, RepresentativeRule::ClosestToAverage),
            &l,
        );
        let median = self_error_pct(&select_with_rule(&bins, RepresentativeRule::MedianStat), &l);
        let frequent = self_error_pct(
            &select_with_rule(&bins, RepresentativeRule::MostFrequent),
            &l,
        );
        assert!(paper <= median + 1e-9, "paper {paper} vs median {median}");
        assert!(
            paper <= frequent + 1e-9,
            "paper {paper} vs frequent {frequent}"
        );
    }

    #[test]
    fn quantile_bins_partition_and_balance() {
        let l = log();
        let profiles = l.sl_profiles();
        let bins = quantile_bins(&profiles, 6);
        assert!(bins.len() <= 6);
        let total: u64 = bins.iter().map(|b| b.weight()).sum();
        assert_eq!(total as usize, l.len());
        // Populations are balanced within a factor ~3 (far tighter than
        // equal-width bins on a skewed distribution).
        let weights: Vec<u64> = bins.iter().map(|b| b.weight()).collect();
        let (min, max) = (
            *weights.iter().min().unwrap(),
            *weights.iter().max().unwrap(),
        );
        assert!(max <= min * 3, "weights = {weights:?}");
    }

    #[test]
    fn quantile_bins_edge_cases() {
        assert!(quantile_bins(&[], 4).is_empty());
        let one = vec![SlProfile {
            seq_len: 7,
            count: 5,
            mean_stat: 1.0,
        }];
        let bins = quantile_bins(&one, 4);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].weight(), 5);
    }
}
