//! Property-based invariants of corpora, batching, and epoch plans.

use proptest::prelude::*;
use sqnn_data::{BatchPolicy, Corpus, EpochPlan, LengthModel};

fn arb_lengths() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..500, 1..400)
}

fn arb_policy() -> impl Strategy<Value = BatchPolicy> {
    (1u32..100, 0u8..3, 1u32..32).prop_map(|(batch, kind, buckets)| match kind {
        0 => BatchPolicy::shuffled(batch),
        1 => BatchPolicy::sorted_first_epoch(batch),
        _ => BatchPolicy::bucketed(batch, buckets),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_sample_lands_in_exactly_one_batch(
        lengths in arb_lengths(),
        policy in arb_policy(),
        seed in 0u64..1000,
    ) {
        let corpus = Corpus::from_lengths("prop", lengths.clone(), 100);
        let plan = policy.plan(&corpus, seed).unwrap();
        let samples: u32 = plan.iter().map(|b| b.samples).sum();
        prop_assert_eq!(samples as usize, lengths.len());
        prop_assert_eq!(plan.len(), lengths.len().div_ceil(policy.batch_size() as usize));
    }

    #[test]
    fn batch_seq_len_bounds_hold(
        lengths in arb_lengths(),
        policy in arb_policy(),
        seed in 0u64..1000,
    ) {
        let corpus = Corpus::from_lengths("prop", lengths, 100);
        let plan = policy.plan(&corpus, seed).unwrap();
        let (min, max) = (corpus.min_len().unwrap(), corpus.max_len().unwrap());
        for b in &plan {
            prop_assert!(b.seq_len >= min && b.seq_len <= max);
            prop_assert!(b.payload_fraction > 0.0 && b.payload_fraction <= 1.0);
            prop_assert!(b.samples >= 1 && b.samples <= policy.batch_size());
        }
        // The longest sample always defines some batch's padded length.
        prop_assert!(plan.iter().any(|b| b.seq_len == max));
    }

    #[test]
    fn sorted_policy_minimizes_total_padded_area(
        mut lengths in arb_lengths(),
        batch in 1u32..64,
        seed in 0u64..100,
    ) {
        // The padded tensor area of an epoch is Σ seq_len · samples. For
        // *equal-size* batches, sorting groups similar lengths and never
        // pads more in total than any shuffle. (With a ragged final batch
        // the guarantee genuinely fails: sorting strands the single
        // largest sample there while paying the second-largest across a
        // full batch, so we truncate to whole batches.)
        lengths.truncate(lengths.len() - lengths.len() % batch as usize);
        prop_assume!(!lengths.is_empty());
        let corpus = Corpus::from_lengths("prop", lengths, 100);
        let area = |p: &[sqnn_data::BatchShape]| -> u64 {
            p.iter().map(|b| u64::from(b.seq_len) * u64::from(b.samples)).sum()
        };
        let sorted = BatchPolicy::sorted_first_epoch(batch).plan(&corpus, seed).unwrap();
        let shuffled = BatchPolicy::shuffled(batch).plan(&corpus, seed).unwrap();
        prop_assert!(area(&sorted) <= area(&shuffled));
    }

    #[test]
    fn epoch_plan_round_trips_frequencies(
        lengths in arb_lengths(),
        policy in arb_policy(),
        seed in 0u64..100,
    ) {
        let corpus = Corpus::from_lengths("prop", lengths, 100);
        let plan = EpochPlan::new(&corpus, policy, seed).unwrap();
        let freq = plan.seq_len_frequencies();
        // Frequencies are keyed by the plan's unique SLs …
        let keys: Vec<u32> = freq.iter().map(|&(sl, _)| sl).collect();
        prop_assert_eq!(keys, plan.unique_seq_lens());
        // … and sum to the iteration count.
        let total: usize = freq.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total, plan.iterations());
    }

    #[test]
    fn length_models_stay_in_bounds(
        median in 1.0..300.0_f64,
        sigma in 0.0..2.0_f64,
        seed in 0u64..50,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let model = LengthModel::log_normal(median, sigma, 10, 400);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = model.sample(&mut rng);
            prop_assert!((10..=400).contains(&s));
        }
    }

    #[test]
    fn restriction_is_a_subset(
        lengths in arb_lengths(),
        seed in 0u64..100,
    ) {
        let corpus = Corpus::from_lengths("prop", lengths, 100);
        let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(8), seed).unwrap();
        let lens = plan.unique_seq_lens();
        let half: Vec<u32> = lens.iter().copied().step_by(2).collect();
        let restricted = plan.restrict_to_seq_lens(&half);
        prop_assert!(restricted.iterations() <= plan.iterations());
        for b in restricted.batches() {
            prop_assert!(half.contains(&b.seq_len));
        }
    }
}
