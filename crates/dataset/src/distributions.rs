//! Sequence-length distributions, implemented directly on [`rand`]'s
//! `Rng` trait (no external distribution crates).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A parametric model of a dataset's sequence-length distribution.
///
/// All variants clamp their samples into `[min_len, max_len]` so corpora
/// stay within the unrolling range their network supports.
///
/// ```
/// use rand::SeedableRng;
/// use sqnn_data::LengthModel;
///
/// let model = LengthModel::log_normal(18.0, 0.65, 1, 200);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let len = model.sample(&mut rng);
/// assert!((1..=200).contains(&len));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LengthModel {
    /// Log-normal over lengths: `exp(N(ln(median), sigma))`. The natural
    /// model for sentence word counts and utterance durations.
    LogNormal {
        /// Median length (the exponential of the underlying mean).
        median: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
        /// Inclusive lower clamp.
        min_len: u32,
        /// Inclusive upper clamp.
        max_len: u32,
    },
    /// Geometric tail: `min_len + Geom(p)`, truncated at `max_len`.
    Geometric {
        /// Per-step continuation probability in `(0, 1)`.
        continue_p: f64,
        /// Inclusive lower clamp.
        min_len: u32,
        /// Inclusive upper clamp.
        max_len: u32,
    },
    /// Uniform over `[min_len, max_len]`.
    Uniform {
        /// Inclusive lower bound.
        min_len: u32,
        /// Inclusive upper bound.
        max_len: u32,
    },
    /// An empirical histogram: weights over length buckets, sampled by
    /// bucket then uniformly within.
    Empirical {
        /// `(bucket_start, bucket_end_inclusive, weight)` triples.
        buckets: Vec<(u32, u32, f64)>,
    },
}

impl LengthModel {
    /// A log-normal model with the given `median` and log-space `sigma`,
    /// clamped to `[min_len, max_len]`.
    pub fn log_normal(median: f64, sigma: f64, min_len: u32, max_len: u32) -> Self {
        LengthModel::LogNormal {
            median: median.max(1.0),
            sigma: sigma.abs(),
            min_len: min_len.min(max_len),
            max_len: max_len.max(min_len),
        }
    }

    /// A geometric-tail model.
    pub fn geometric(continue_p: f64, min_len: u32, max_len: u32) -> Self {
        LengthModel::Geometric {
            continue_p: continue_p.clamp(1e-6, 1.0 - 1e-6),
            min_len: min_len.min(max_len),
            max_len: max_len.max(min_len),
        }
    }

    /// A uniform model over `[min_len, max_len]`.
    pub fn uniform(min_len: u32, max_len: u32) -> Self {
        LengthModel::Uniform {
            min_len: min_len.min(max_len),
            max_len: max_len.max(min_len),
        }
    }

    /// An empirical histogram model. Buckets with non-positive weight are
    /// ignored; an empty histogram degenerates to constant length 1.
    pub fn empirical(buckets: Vec<(u32, u32, f64)>) -> Self {
        LengthModel::Empirical { buckets }
    }

    /// Draw one sequence length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            LengthModel::LogNormal {
                median,
                sigma,
                min_len,
                max_len,
            } => {
                let z = standard_normal(rng);
                let len = (median.ln() + sigma * z).exp().round();
                (len as i64).clamp(i64::from(*min_len), i64::from(*max_len)) as u32
            }
            LengthModel::Geometric {
                continue_p,
                min_len,
                max_len,
            } => {
                let mut len = *min_len;
                while len < *max_len && rng.gen::<f64>() < *continue_p {
                    len += 1;
                }
                len
            }
            LengthModel::Uniform { min_len, max_len } => rng.gen_range(*min_len..=*max_len),
            LengthModel::Empirical { buckets } => {
                let total: f64 = buckets.iter().map(|b| b.2.max(0.0)).sum();
                if total <= 0.0 {
                    return 1;
                }
                let mut draw = rng.gen::<f64>() * total;
                for &(lo, hi, w) in buckets {
                    let w = w.max(0.0);
                    if draw < w {
                        let (lo, hi) = (lo.min(hi), hi.max(lo));
                        return rng.gen_range(lo..=hi);
                    }
                    draw -= w;
                }
                buckets.last().map(|b| b.1).unwrap_or(1)
            }
        }
    }
}

/// A standard-normal draw via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_many(model: &LengthModel, n: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| model.sample(&mut rng)).collect()
    }

    #[test]
    fn log_normal_median_is_roughly_right() {
        let model = LengthModel::log_normal(80.0, 0.5, 1, 10_000);
        let mut samples = sample_many(&model, 20_000, 7);
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        assert!((70..=90).contains(&median), "median = {median}");
    }

    #[test]
    fn samples_respect_clamps() {
        for model in [
            LengthModel::log_normal(100.0, 1.5, 50, 450),
            LengthModel::geometric(0.97, 50, 450),
            LengthModel::uniform(50, 450),
        ] {
            for s in sample_many(&model, 5_000, 3) {
                assert!((50..=450).contains(&s), "{model:?} produced {s}");
            }
        }
    }

    #[test]
    fn log_normal_is_right_skewed() {
        let model = LengthModel::log_normal(20.0, 0.8, 1, 1_000);
        let samples = sample_many(&model, 50_000, 11);
        let mean = samples.iter().map(|&s| f64::from(s)).sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = f64::from(sorted[sorted.len() / 2]);
        assert!(mean > median, "mean {mean} should exceed median {median}");
    }

    #[test]
    fn empirical_respects_buckets() {
        let model = LengthModel::empirical(vec![(10, 19, 3.0), (50, 59, 1.0)]);
        let samples = sample_many(&model, 10_000, 5);
        let low = samples.iter().filter(|&&s| (10..=19).contains(&s)).count();
        let high = samples.iter().filter(|&&s| (50..=59).contains(&s)).count();
        assert_eq!(low + high, samples.len());
        let ratio = low as f64 / high as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn empirical_ignores_negative_weights() {
        let model = LengthModel::empirical(vec![(1, 5, -2.0), (10, 10, 1.0)]);
        for s in sample_many(&model, 100, 9) {
            assert_eq!(s, 10);
        }
    }

    #[test]
    fn empty_empirical_degenerates() {
        let model = LengthModel::empirical(vec![]);
        assert_eq!(sample_many(&model, 10, 1), vec![1; 10]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = LengthModel::log_normal(30.0, 0.6, 1, 200);
        assert_eq!(sample_many(&model, 100, 42), sample_many(&model, 100, 42));
        assert_ne!(sample_many(&model, 100, 42), sample_many(&model, 100, 43));
    }

    #[test]
    fn geometric_tail_decays() {
        let model = LengthModel::geometric(0.9, 1, 1_000);
        let samples = sample_many(&model, 50_000, 13);
        let short = samples.iter().filter(|&&s| s <= 10).count();
        let long = samples.iter().filter(|&&s| s > 30).count();
        assert!(short > long * 5, "short={short}, long={long}");
    }

    #[test]
    fn constructor_clamps_degenerate_params() {
        // min > max gets swapped-ish (clamped) rather than panicking.
        let m = LengthModel::uniform(100, 10);
        let mut rng = StdRng::seed_from_u64(0);
        let s = m.sample(&mut rng);
        assert!((10..=100).contains(&s) || s == 100 || s == 10);
    }
}
