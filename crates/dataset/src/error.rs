use std::error::Error;
use std::fmt;

/// Errors produced when constructing corpora or epoch plans.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// The corpus contains no samples.
    EmptyCorpus,
    /// A batching parameter was invalid.
    InvalidBatching {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EmptyCorpus => write!(f, "corpus contains no samples"),
            DataError::InvalidBatching { reason } => {
                write!(f, "invalid batching parameters: {reason}")
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DataError::EmptyCorpus.to_string().contains("no samples"));
        let err = DataError::InvalidBatching {
            reason: "batch size must be positive".into(),
        };
        assert!(err.to_string().contains("batch size"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
