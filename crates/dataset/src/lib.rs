//! # sqnn-data — synthetic sequence-length corpora and batching
//!
//! SeqPoint never inspects the *content* of training samples; everything
//! it observes flows from each sample's **sequence length** (SL) and the
//! batching policy that turns samples into padded iterations. This crate
//! therefore models datasets as corpora of sequence lengths whose marginal
//! distributions match the datasets the paper evaluates:
//!
//! * [`Corpus::iwslt15_like`] — IWSLT'15 English–Vietnamese: ~133k
//!   sentences, long-tail word counts in 1–200 (paper Fig. 7b).
//! * [`Corpus::librispeech100_like`] — LibriSpeech 100-hour: ~28.5k
//!   utterances, skewed recurrent-step counts in 50–450 (paper Fig. 7a).
//! * [`Corpus::wmt16_like`] / [`Corpus::librispeech500_like`] — the larger
//!   datasets of Section VI-F, with similar SL ranges but more samples.
//!
//! Batching reproduces the behaviours the paper calls out: fixed batch
//! size, padding to the batch maximum, GNMT-style length bucketing, and
//! DeepSpeech2's length-sorted first epoch (the reason the "Prior"
//! baseline accidentally works on DS2).
//!
//! ```
//! use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
//!
//! # fn main() -> Result<(), sqnn_data::DataError> {
//! let corpus = Corpus::iwslt15_like(10_000, 42);
//! let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), 42)?;
//! assert_eq!(plan.total_samples(), 10_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batching;
mod corpus;
mod distributions;
mod epoch;
mod error;

pub use batching::{BatchPolicy, BatchShape};
pub use corpus::Corpus;
pub use distributions::LengthModel;
pub use epoch::EpochPlan;
pub use error::DataError;
