use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::LengthModel;

/// A dataset reduced to what SeqPoint observes: one sequence length per
/// sample, plus the vocabulary size (which the paper's key observation 6
/// says must never be scaled down when sampling iterations).
///
/// ```
/// use sqnn_data::Corpus;
///
/// let corpus = Corpus::librispeech100_like(7);
/// assert_eq!(corpus.vocab_size(), 29); // DS2's character alphabet
/// assert!(corpus.len() > 20_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corpus {
    name: String,
    lengths: Vec<u32>,
    vocab_size: u32,
}

/// Number of sentence pairs in the IWSLT'15 English–Vietnamese training
/// set (used by GNMT in the paper).
pub(crate) const IWSLT15_SENTENCES: usize = 133_000;

/// Number of utterances in the LibriSpeech `train-clean-100` split (used
/// by DeepSpeech2 in the paper).
pub(crate) const LIBRISPEECH100_UTTERANCES: usize = 28_539;

impl Corpus {
    /// Build a corpus from explicit lengths.
    pub fn from_lengths(
        name: impl Into<String>,
        lengths: impl IntoIterator<Item = u32>,
        vocab_size: u32,
    ) -> Self {
        Corpus {
            name: name.into(),
            lengths: lengths.into_iter().map(|l| l.max(1)).collect(),
            vocab_size: vocab_size.max(1),
        }
    }

    /// Sample a corpus of `samples` lengths from `model`.
    pub fn sampled(
        name: impl Into<String>,
        model: &LengthModel,
        samples: usize,
        vocab_size: u32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let lengths = (0..samples)
            .map(|_| model.sample(&mut rng).max(1))
            .collect();
        Corpus {
            name: name.into(),
            lengths,
            vocab_size: vocab_size.max(1),
        }
    }

    /// An IWSLT'15-like machine-translation corpus: `sentences` sentence
    /// pairs with long-tail word counts in `[1, 200]` (median ≈ 18) and
    /// GNMT's 36 549-entry target vocabulary.
    ///
    /// Matches the decaying histogram of the paper's Fig. 7(b).
    pub fn iwslt15_like(sentences: usize, seed: u64) -> Self {
        Corpus::sampled(
            "iwslt15-like",
            &LengthModel::log_normal(18.0, 0.65, 1, 200),
            sentences,
            36_549,
            seed,
        )
    }

    /// The full-size IWSLT'15-like corpus (~133k sentences).
    pub fn iwslt15_full(seed: u64) -> Self {
        Corpus::iwslt15_like(IWSLT15_SENTENCES, seed)
    }

    /// A WMT'16-like corpus: the larger machine-translation dataset of
    /// Section VI-F, with a similar SL range but ~4.5M sentences.
    ///
    /// `scale` shrinks the sentence count proportionally (1.0 = full size)
    /// so experiments can trade runtime for fidelity.
    pub fn wmt16_like(scale: f64, seed: u64) -> Self {
        let sentences = (4_500_000_f64 * scale.clamp(0.0001, 1.0)) as usize;
        Corpus::sampled(
            "wmt16-like",
            &LengthModel::log_normal(20.0, 0.68, 1, 200),
            sentences.max(1),
            36_549,
            seed,
        )
    }

    /// The sequence-length model shared by the LibriSpeech-like corpora:
    /// log-normal recurrent-step counts over `[50, 450]` with median 120
    /// — right-skewed with the mode near SL ≈ 90, so short utterances
    /// dominate (the paper's Fig. 7(a)) while the clamp at 50 stays a
    /// small tail rather than a spike.
    pub fn librispeech_length_model() -> LengthModel {
        LengthModel::log_normal(120.0, 0.55, 50, 450)
    }

    /// A LibriSpeech-100h-like speech corpus: ~28.5k utterances with
    /// DS2's 29-character alphabet and the skewed SL histogram of the
    /// paper's Fig. 7(a).
    pub fn librispeech100_like(seed: u64) -> Self {
        Corpus::sampled(
            "librispeech100-like",
            &Corpus::librispeech_length_model(),
            LIBRISPEECH100_UTTERANCES,
            29,
            seed,
        )
    }

    /// A LibriSpeech-500h-like corpus (Section VI-F): same SL range,
    /// roughly 5x the utterances. `scale` shrinks proportionally.
    pub fn librispeech500_like(scale: f64, seed: u64) -> Self {
        let utterances =
            ((LIBRISPEECH100_UTTERANCES * 5) as f64 * scale.clamp(0.0001, 1.0)) as usize;
        Corpus::sampled(
            "librispeech500-like",
            &Corpus::librispeech_length_model(),
            utterances.max(1),
            29,
            seed,
        )
    }

    /// A degenerate fixed-length corpus, as a CNN sees (every input scaled
    /// to the same size). Used by the Fig. 3 contrast experiments.
    pub fn fixed_length(name: impl Into<String>, len: u32, samples: usize) -> Self {
        Corpus::from_lengths(name, std::iter::repeat_n(len.max(1), samples), 1000)
    }

    /// The corpus name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.lengths.len()
    }

    /// Whether the corpus has no samples.
    pub fn is_empty(&self) -> bool {
        self.lengths.is_empty()
    }

    /// The per-sample sequence lengths.
    pub fn lengths(&self) -> &[u32] {
        &self.lengths
    }

    /// Vocabulary size (symbol inventory) of the dataset.
    pub fn vocab_size(&self) -> u32 {
        self.vocab_size
    }

    /// Minimum sequence length (None if empty).
    pub fn min_len(&self) -> Option<u32> {
        self.lengths.iter().copied().min()
    }

    /// Maximum sequence length (None if empty).
    pub fn max_len(&self) -> Option<u32> {
        self.lengths.iter().copied().max()
    }

    /// Mean sequence length (0 if empty).
    pub fn mean_len(&self) -> f64 {
        if self.lengths.is_empty() {
            return 0.0;
        }
        self.lengths.iter().map(|&l| f64::from(l)).sum::<f64>() / self.lengths.len() as f64
    }

    /// Number of distinct sequence lengths present.
    pub fn unique_len_count(&self) -> usize {
        let mut v: Vec<u32> = self.lengths.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Histogram of sample counts per `bin_width`-wide SL range, covering
    /// `[min_len, max_len]`. Returns `(bin_start, count)` pairs.
    pub fn histogram(&self, bin_width: u32) -> Vec<(u32, usize)> {
        let bin_width = bin_width.max(1);
        let (Some(min), Some(max)) = (self.min_len(), self.max_len()) else {
            return Vec::new();
        };
        let bins = ((max - min) / bin_width + 1) as usize;
        let mut counts = vec![0usize; bins];
        for &l in &self.lengths {
            counts[((l - min) / bin_width) as usize] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (min + i as u32 * bin_width, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iwslt_matches_paper_shape() {
        let c = Corpus::iwslt15_like(20_000, 1);
        assert_eq!(c.len(), 20_000);
        assert_eq!(c.vocab_size(), 36_549);
        assert!(c.min_len().unwrap() >= 1);
        assert!(c.max_len().unwrap() <= 200);
        // Long-tail: counts decay across the Fig. 7(b) histogram bins.
        let hist = c.histogram(33);
        assert!(hist[0].1 > hist[1].1);
        assert!(hist[1].1 > hist[2].1);
    }

    #[test]
    fn librispeech_is_skewed_low() {
        let c = Corpus::librispeech100_like(2);
        assert_eq!(c.len(), LIBRISPEECH100_UTTERANCES);
        assert!(c.min_len().unwrap() >= 50);
        assert!(c.max_len().unwrap() <= 450);
        let hist = c.histogram(40);
        // First bins dominate, as in Fig. 7(a).
        assert!(hist[0].1 + hist[1].1 > c.len() / 2);
        // But a tail exists past SL 250.
        let tail: usize = hist
            .iter()
            .filter(|(lo, _)| *lo >= 250)
            .map(|(_, n)| n)
            .sum();
        assert!(tail > 0);
    }

    #[test]
    fn larger_datasets_have_same_range_more_samples() {
        let small = Corpus::librispeech100_like(3);
        let large = Corpus::librispeech500_like(0.2, 3);
        assert_eq!(large.len(), LIBRISPEECH100_UTTERANCES); // 5x * 0.2
        assert_eq!(small.vocab_size(), large.vocab_size());
        let wmt = Corpus::wmt16_like(0.01, 3);
        assert_eq!(wmt.len(), 45_000);
        assert!(wmt.max_len().unwrap() <= 200);
    }

    #[test]
    fn corpora_are_deterministic_per_seed() {
        assert_eq!(Corpus::iwslt15_like(1000, 9), Corpus::iwslt15_like(1000, 9));
        assert_ne!(
            Corpus::iwslt15_like(1000, 9),
            Corpus::iwslt15_like(1000, 10)
        );
    }

    #[test]
    fn fixed_length_corpus_has_one_unique_length() {
        let c = Corpus::fixed_length("cnn-images", 224, 500);
        assert_eq!(c.unique_len_count(), 1);
        assert_eq!(c.mean_len(), 224.0);
    }

    #[test]
    fn histogram_covers_all_samples() {
        let c = Corpus::iwslt15_like(5_000, 4);
        for width in [1, 7, 25, 100] {
            let total: usize = c.histogram(width).iter().map(|(_, n)| n).sum();
            assert_eq!(total, c.len(), "width {width}");
        }
    }

    #[test]
    fn empty_corpus_edge_cases() {
        let c = Corpus::from_lengths("empty", Vec::<u32>::new(), 10);
        assert!(c.is_empty());
        assert_eq!(c.min_len(), None);
        assert_eq!(c.histogram(10), Vec::new());
        assert_eq!(c.mean_len(), 0.0);
    }

    #[test]
    fn zero_lengths_are_lifted_to_one() {
        let c = Corpus::from_lengths("z", [0, 0, 5], 10);
        assert_eq!(c.min_len(), Some(1));
    }

    #[test]
    fn unique_len_count_counts_distinct() {
        let c = Corpus::from_lengths("u", [3, 3, 7, 9, 9, 9], 10);
        assert_eq!(c.unique_len_count(), 3);
    }
}
