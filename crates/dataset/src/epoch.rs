use serde::{Deserialize, Serialize};

use crate::{BatchPolicy, BatchShape, Corpus, DataError};

/// One training epoch's worth of iteration shapes: the batches produced
/// by applying a [`BatchPolicy`] to a [`Corpus`], plus the dataset
/// metadata the network model needs (vocabulary size).
///
/// ```
/// use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
///
/// # fn main() -> Result<(), sqnn_data::DataError> {
/// let corpus = Corpus::librispeech100_like(1);
/// let plan = EpochPlan::new(&corpus, BatchPolicy::sorted_first_epoch(64), 1)?;
/// assert_eq!(plan.iterations(), corpus.len().div_ceil(64));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochPlan {
    dataset: String,
    vocab_size: u32,
    batch_size: u32,
    batches: Vec<BatchShape>,
}

impl EpochPlan {
    /// Plan one epoch of `corpus` under `policy`.
    ///
    /// # Errors
    ///
    /// Propagates [`DataError`] from [`BatchPolicy::plan`] (empty corpus
    /// or zero batch size).
    pub fn new(corpus: &Corpus, policy: BatchPolicy, seed: u64) -> Result<Self, DataError> {
        let batches = policy.plan(corpus, seed)?;
        Ok(EpochPlan {
            dataset: corpus.name().to_owned(),
            vocab_size: corpus.vocab_size(),
            batch_size: policy.batch_size(),
            batches,
        })
    }

    /// Build a plan directly from batch shapes (for tests and synthetic
    /// workloads).
    pub fn from_batches(
        dataset: impl Into<String>,
        vocab_size: u32,
        batch_size: u32,
        batches: Vec<BatchShape>,
    ) -> Self {
        EpochPlan {
            dataset: dataset.into(),
            vocab_size: vocab_size.max(1),
            batch_size: batch_size.max(1),
            batches,
        }
    }

    /// The source dataset's name.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The dataset's vocabulary size.
    pub fn vocab_size(&self) -> u32 {
        self.vocab_size
    }

    /// The nominal batch size.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Number of iterations in the epoch.
    pub fn iterations(&self) -> usize {
        self.batches.len()
    }

    /// The per-iteration batch shapes, in execution order.
    pub fn batches(&self) -> &[BatchShape] {
        &self.batches
    }

    /// Total number of samples across all batches.
    pub fn total_samples(&self) -> usize {
        self.batches.iter().map(|b| b.samples as usize).sum()
    }

    /// The distinct padded sequence lengths exercised by this epoch,
    /// ascending. This is the space SeqPoint bins (paper Section V-A).
    pub fn unique_seq_lens(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.batches.iter().map(|b| b.seq_len).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iteration counts per distinct sequence length, ascending by SL —
    /// the paper's Fig. 7 histogram.
    pub fn seq_len_frequencies(&self) -> Vec<(u32, usize)> {
        let mut v: Vec<u32> = self.batches.iter().map(|b| b.seq_len).collect();
        v.sort_unstable();
        let mut out: Vec<(u32, usize)> = Vec::new();
        for sl in v {
            match out.last_mut() {
                Some((prev, n)) if *prev == sl => *n += 1,
                _ => out.push((sl, 1)),
            }
        }
        out
    }

    /// The epoch as contiguous rounds of at most `round_len` iterations
    /// (the last round may be short) — the ingestion granularity of the
    /// streaming profiling path. Concatenating the rounds reproduces
    /// [`EpochPlan::batches`] exactly.
    ///
    /// `round_len` is clamped to at least 1.
    pub fn rounds(&self, round_len: usize) -> impl Iterator<Item = &[BatchShape]> {
        self.batches.chunks(round_len.max(1))
    }

    /// The strided sub-stream of iterations assigned to worker `shard` of
    /// `num_shards` under round-robin dealing: global iteration `i` goes
    /// to shard `i % num_shards`. The `num_shards` shard streams
    /// partition the epoch, and within any contiguous round every shard
    /// sees an equal share (±1) of the round's iterations.
    ///
    /// This is exactly the rule the streaming harness uses to deal each
    /// [`EpochPlan::rounds`] block to its worker threads, so a worker's
    /// measured sub-stream is always a prefix of its `shard` stream
    /// (invariant cross-checked by this module's tests).
    ///
    /// `num_shards` is clamped to at least 1; a `shard` index at or past
    /// `num_shards` yields an empty stream.
    pub fn shard(&self, shard: usize, num_shards: usize) -> impl Iterator<Item = BatchShape> + '_ {
        let num_shards = num_shards.max(1);
        let assigned = if shard < num_shards {
            &self.batches[..]
        } else {
            &[]
        };
        assigned.iter().skip(shard).step_by(num_shards).copied()
    }

    /// A sub-plan containing only the iterations at the given sequence
    /// lengths (used to re-profile just the SeqPoints on new hardware).
    pub fn restrict_to_seq_lens(&self, seq_lens: &[u32]) -> EpochPlan {
        let keep: Vec<BatchShape> = self
            .batches
            .iter()
            .filter(|b| seq_lens.contains(&b.seq_len))
            .copied()
            .collect();
        EpochPlan {
            dataset: self.dataset.clone(),
            vocab_size: self.vocab_size,
            batch_size: self.batch_size,
            batches: keep,
        }
    }

    /// One representative batch per requested sequence length (the first
    /// occurrence), preserving the order of `seq_lens`. Lengths absent
    /// from the plan are skipped.
    pub fn one_batch_per_seq_len(&self, seq_lens: &[u32]) -> Vec<BatchShape> {
        seq_lens
            .iter()
            .filter_map(|&sl| self.batches.iter().find(|b| b.seq_len == sl).copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> EpochPlan {
        let corpus = Corpus::iwslt15_like(5_000, 21);
        EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), 21).unwrap()
    }

    #[test]
    fn iteration_count_matches_ceil_division() {
        let p = plan();
        assert_eq!(p.iterations(), 5_000usize.div_ceil(64));
        assert_eq!(p.total_samples(), 5_000);
        assert_eq!(p.batch_size(), 64);
    }

    #[test]
    fn unique_seq_lens_sorted_and_deduped() {
        let p = plan();
        let lens = p.unique_seq_lens();
        assert!(!lens.is_empty());
        for w in lens.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn frequencies_sum_to_iterations() {
        let p = plan();
        let total: usize = p.seq_len_frequencies().iter().map(|(_, n)| n).sum();
        assert_eq!(total, p.iterations());
    }

    #[test]
    fn restrict_keeps_only_requested_lens() {
        let p = plan();
        let lens = p.unique_seq_lens();
        let subset = vec![lens[0], lens[lens.len() - 1]];
        let r = p.restrict_to_seq_lens(&subset);
        assert!(r.iterations() > 0);
        for b in r.batches() {
            assert!(subset.contains(&b.seq_len));
        }
    }

    #[test]
    fn one_batch_per_seq_len_returns_at_most_one_each() {
        let p = plan();
        let lens = p.unique_seq_lens();
        let picks = p.one_batch_per_seq_len(&lens);
        assert_eq!(picks.len(), lens.len());
        // Absent lengths are skipped silently.
        let picks = p.one_batch_per_seq_len(&[9999]);
        assert!(picks.is_empty());
    }

    #[test]
    fn rounds_concatenate_to_the_full_epoch() {
        let p = plan();
        for round_len in [1, 7, 64, 10_000] {
            let rejoined: Vec<BatchShape> = p.rounds(round_len).flatten().copied().collect();
            assert_eq!(rejoined, p.batches(), "round_len = {round_len}");
            for (i, round) in p.rounds(round_len).enumerate() {
                let is_last = (i + 1) * round_len >= p.iterations();
                assert!(round.len() == round_len || is_last);
            }
        }
        // Degenerate round length is clamped.
        assert_eq!(p.rounds(0).count(), p.iterations());
    }

    #[test]
    fn shards_partition_the_epoch_round_robin() {
        let p = plan();
        for num_shards in [1usize, 2, 3, 8] {
            let shards: Vec<Vec<BatchShape>> = (0..num_shards)
                .map(|s| p.shard(s, num_shards).collect())
                .collect();
            let total: usize = shards.iter().map(Vec::len).sum();
            assert_eq!(total, p.iterations());
            // Round-robin interleave reconstructs the epoch order.
            let mut rebuilt = Vec::with_capacity(total);
            for i in 0..p.iterations() {
                rebuilt.push(shards[i % num_shards][i / num_shards]);
            }
            assert_eq!(rebuilt, p.batches(), "num_shards = {num_shards}");
            // Balanced to within one iteration.
            let (min, max) = (
                shards.iter().map(Vec::len).min().unwrap(),
                shards.iter().map(Vec::len).max().unwrap(),
            );
            assert!(max - min <= 1);
        }
        // Out-of-range shard index and zero shard count are harmless.
        assert_eq!(p.shard(3, 3).count(), 0);
        assert_eq!(p.shard(0, 0).count(), p.iterations());
    }

    #[test]
    fn round_dealing_concatenates_to_the_shard_streams() {
        // Dealing each round block by global index (the streaming
        // harness's rule) and concatenating a worker's chunks across
        // rounds must reproduce exactly that worker's `shard` stream —
        // including when round_len is not a multiple of num_shards.
        let p = plan();
        for (num_shards, round_len) in [(3usize, 25usize), (4, 30), (5, 7)] {
            let mut dealt: Vec<Vec<BatchShape>> = vec![Vec::new(); num_shards];
            let mut consumed = 0;
            for block in p.rounds(round_len) {
                for (offset, &batch) in block.iter().enumerate() {
                    dealt[(consumed + offset) % num_shards].push(batch);
                }
                consumed += block.len();
            }
            for (s, worker) in dealt.iter().enumerate() {
                let stream: Vec<BatchShape> = p.shard(s, num_shards).collect();
                assert_eq!(
                    worker, &stream,
                    "shard {s} of {num_shards}, round_len {round_len}"
                );
            }
        }
    }

    #[test]
    fn from_batches_clamps_degenerate_params() {
        let p = EpochPlan::from_batches("x", 0, 0, Vec::new());
        assert_eq!(p.vocab_size(), 1);
        assert_eq!(p.batch_size(), 1);
        assert_eq!(p.iterations(), 0);
        assert!(p.unique_seq_lens().is_empty());
    }

    #[test]
    fn propagates_corpus_errors() {
        let empty = Corpus::from_lengths("e", Vec::<u32>::new(), 1);
        assert!(EpochPlan::new(&empty, BatchPolicy::shuffled(4), 0).is_err());
    }
}
