use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{Corpus, DataError};

/// The shape of one training iteration's input batch after padding.
///
/// Most SQNN frameworks pick a single sequence length for the whole batch
/// (the maximum over its samples) and pad the rest — so the batch SL, the
/// sample count, and the padding fraction fully determine the iteration's
/// computation (the paper's Section IV-B1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchShape {
    /// The padded sequence length (maximum over the batch's samples).
    pub seq_len: u32,
    /// Number of real samples in the batch (the last batch may be short).
    pub samples: u32,
    /// Fraction of the padded tensor occupied by real data, in `(0, 1]`.
    pub payload_fraction: f64,
}

/// How samples are grouped into fixed-size batches.
///
/// * [`BatchPolicy::shuffled`] — uniform shuffle, the generic default.
/// * [`BatchPolicy::sorted_first_epoch`] — ascending length sort, as
///   DeepSpeech2 does in its first epoch (the paper notes this is why the
///   "Prior" contiguous-window baseline accidentally lands on
///   representative iterations for DS2).
/// * [`BatchPolicy::bucketed`] — GNMT-style length bucketing: samples are
///   grouped into similar-length buckets, batched within buckets, and the
///   batch order shuffled. This minimizes padding while keeping batch SLs
///   spread over the whole range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPolicy {
    batch_size: u32,
    order: BatchOrder,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum BatchOrder {
    Shuffled,
    SortedAscending,
    Bucketed { buckets: u32 },
}

impl BatchPolicy {
    /// Uniformly shuffled batches of `batch_size`.
    pub fn shuffled(batch_size: u32) -> Self {
        BatchPolicy {
            batch_size,
            order: BatchOrder::Shuffled,
        }
    }

    /// Length-sorted (ascending) batches of `batch_size` — DS2's first
    /// training epoch.
    pub fn sorted_first_epoch(batch_size: u32) -> Self {
        BatchPolicy {
            batch_size,
            order: BatchOrder::SortedAscending,
        }
    }

    /// Length-bucketed batches of `batch_size` using `buckets` equal-width
    /// length ranges — GNMT-style batching.
    pub fn bucketed(batch_size: u32, buckets: u32) -> Self {
        BatchPolicy {
            batch_size,
            order: BatchOrder::Bucketed {
                buckets: buckets.max(1),
            },
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Group `corpus` into batch shapes.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyCorpus`] for an empty corpus and
    /// [`DataError::InvalidBatching`] for a zero batch size.
    pub fn plan(&self, corpus: &Corpus, seed: u64) -> Result<Vec<BatchShape>, DataError> {
        if corpus.is_empty() {
            return Err(DataError::EmptyCorpus);
        }
        if self.batch_size == 0 {
            return Err(DataError::InvalidBatching {
                reason: "batch size must be positive".to_owned(),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lengths: Vec<u32> = corpus.lengths().to_vec();
        match self.order {
            BatchOrder::Shuffled => lengths.shuffle(&mut rng),
            BatchOrder::SortedAscending | BatchOrder::Bucketed { .. } => {
                // Sorting groups similar lengths; bucketed batching carves
                // batches from the sorted order too.
                lengths.sort_unstable();
            }
        }
        let mut batches: Vec<BatchShape> = lengths
            .chunks(self.batch_size as usize)
            .map(|chunk| {
                let max = *chunk.iter().max().expect("chunks are non-empty");
                let payload: u64 = chunk.iter().map(|&l| u64::from(l)).sum();
                BatchShape {
                    seq_len: max,
                    samples: chunk.len() as u32,
                    payload_fraction: payload as f64 / (u64::from(max) * chunk.len() as u64) as f64,
                }
            })
            .collect();
        if let BatchOrder::Bucketed { buckets } = self.order {
            // Real length-bucketed input pipelines drain one bucket's
            // queue at a time, so the *bucket order* is randomized while
            // batches within a bucket stay adjacent. This produces the
            // runs of similar-SL iterations that make a contiguous
            // profiling window ("Prior") non-diverse — the failure mode
            // the paper describes in Section VI-E.
            let bucket_len = batches.len().div_ceil(buckets.max(1) as usize).max(1);
            let mut groups: Vec<Vec<BatchShape>> =
                batches.chunks(bucket_len).map(|c| c.to_vec()).collect();
            groups.shuffle(&mut rng);
            batches = groups.into_iter().flatten().collect();
        }
        Ok(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::iwslt15_like(10_000, 77)
    }

    #[test]
    fn plan_covers_every_sample() {
        let c = corpus();
        for policy in [
            BatchPolicy::shuffled(64),
            BatchPolicy::sorted_first_epoch(64),
            BatchPolicy::bucketed(64, 16),
        ] {
            let plan = policy.plan(&c, 1).unwrap();
            let samples: u32 = plan.iter().map(|b| b.samples).sum();
            assert_eq!(samples as usize, c.len());
            assert_eq!(plan.len(), c.len().div_ceil(64));
        }
    }

    #[test]
    fn batch_seq_len_is_max_of_members() {
        let c = Corpus::from_lengths("t", [5, 9, 2, 7], 10);
        let plan = BatchPolicy::sorted_first_epoch(2).plan(&c, 0).unwrap();
        assert_eq!(plan[0].seq_len, 5); // sorted: [2,5] [7,9]
        assert_eq!(plan[1].seq_len, 9);
        assert!((plan[0].payload_fraction - 7.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_plan_is_ascending() {
        let plan = BatchPolicy::sorted_first_epoch(64)
            .plan(&corpus(), 3)
            .unwrap();
        for w in plan.windows(2) {
            assert!(w[0].seq_len <= w[1].seq_len);
        }
    }

    #[test]
    fn bucketed_plan_minimizes_padding_vs_shuffled() {
        let c = corpus();
        let avg_payload = |plan: &[BatchShape]| {
            plan.iter().map(|b| b.payload_fraction).sum::<f64>() / plan.len() as f64
        };
        let bucketed = BatchPolicy::bucketed(64, 16).plan(&c, 5).unwrap();
        let shuffled = BatchPolicy::shuffled(64).plan(&c, 5).unwrap();
        assert!(avg_payload(&bucketed) > avg_payload(&shuffled));
    }

    #[test]
    fn bucketed_batches_span_the_length_range() {
        let plan = BatchPolicy::bucketed(64, 16).plan(&corpus(), 5).unwrap();
        let min = plan.iter().map(|b| b.seq_len).min().unwrap();
        let max = plan.iter().map(|b| b.seq_len).max().unwrap();
        // Unlike pure shuffling (where every batch max lands in the upper
        // tail), bucketing preserves short-SL iterations.
        assert!(min < 20, "min batch SL = {min}");
        assert!(max > 60, "max batch SL = {max}");
    }

    #[test]
    fn shuffled_batch_sls_concentrate_high() {
        // Max over 64 random draws lands in the distribution's tail: the
        // motivation for bucketing in GNMT. The exact minimum depends on
        // the RNG stream; > 20 keeps the contrast with the bucketed test
        // above (which requires batches *below* 20).
        let plan = BatchPolicy::shuffled(64).plan(&corpus(), 5).unwrap();
        let min = plan.iter().map(|b| b.seq_len).min().unwrap();
        assert!(min > 20, "min batch SL = {min}");
    }

    #[test]
    fn bucketed_order_is_shuffled() {
        let plan = BatchPolicy::bucketed(64, 16).plan(&corpus(), 5).unwrap();
        let ascending = plan.windows(2).all(|w| w[0].seq_len <= w[1].seq_len);
        assert!(!ascending, "bucketed batches should not arrive sorted");
    }

    #[test]
    fn last_batch_may_be_partial() {
        let c = Corpus::from_lengths("t", [1, 2, 3, 4, 5], 10);
        let plan = BatchPolicy::shuffled(2).plan(&c, 0).unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.iter().map(|b| b.samples).sum::<u32>(), 5);
        assert_eq!(plan.last().unwrap().samples, 1);
    }

    #[test]
    fn plan_rejects_bad_inputs() {
        let empty = Corpus::from_lengths("e", Vec::<u32>::new(), 1);
        assert_eq!(
            BatchPolicy::shuffled(4).plan(&empty, 0),
            Err(DataError::EmptyCorpus)
        );
        let c = corpus();
        assert!(matches!(
            BatchPolicy::shuffled(0).plan(&c, 0),
            Err(DataError::InvalidBatching { .. })
        ));
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let c = corpus();
        let p = BatchPolicy::bucketed(64, 16);
        assert_eq!(p.plan(&c, 9).unwrap(), p.plan(&c, 9).unwrap());
        assert_ne!(p.plan(&c, 9).unwrap(), p.plan(&c, 10).unwrap());
    }
}
