//! The lint gate: all three passes must be clean against the real
//! repository. This is what makes a new `unwrap()` in
//! `crates/service/src`, a lock-order inversion, or a protocol change
//! without a `PROTOCOL_VERSION` bump fail `cargo test` — not just the
//! standalone `seqpoint-lint` binary.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = seqpoint_analysis::run_passes(&root, &seqpoint_analysis::all_passes());
    assert!(
        findings.is_empty(),
        "seqpoint-lint findings (fix the site, waive it in analysis/panic_waivers.toml, \
         or re-bless the protocol digest):\n{}",
        findings
            .iter()
            .map(|f| f.render_human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
