//! Fixture-driven end-to-end tests for the three passes. Each fixture
//! under `tests/fixtures/` is a miniature repo root (its own
//! `analysis/` data files plus sources); the tests run the real pass
//! entry points against them and assert on the findings, down to the
//! `file:line` chains for the seeded deadlock.

use std::fs;
use std::path::{Path, PathBuf};

use seqpoint_analysis::report::{Finding, Pass};
use seqpoint_analysis::{protocol, run_passes};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn render(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(Finding::render_human)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn seeded_two_lock_cycle_is_detected_with_line_chain() {
    let findings = run_passes(&fixture("lock_cycle"), &[Pass::LockOrder]);

    // The inverted acquisition in `backward`: `left` (line 18) taken
    // while holding `right` (line 17).
    let violation = findings
        .iter()
        .find(|f| f.message.contains("acquired while holding"))
        .unwrap_or_else(|| panic!("no order violation in:\n{}", render(&findings)));
    assert_eq!(violation.file, "src/cycle.rs");
    assert_eq!(violation.line, 18);
    let chain_lines: Vec<usize> = violation.chain.iter().map(|l| l.line).collect();
    assert_eq!(chain_lines, vec![17, 18], "{}", render(&findings));
    assert!(violation.chain.iter().all(|l| l.file == "src/cycle.rs"));

    // The cycle itself, witnessed by both functions' acquisition sites.
    let cycle = findings
        .iter()
        .find(|f| f.message.contains("lock-order cycle"))
        .unwrap_or_else(|| panic!("no cycle finding in:\n{}", render(&findings)));
    assert!(
        cycle.message.contains("left") && cycle.message.contains("right"),
        "{}",
        cycle.message
    );
    let cycle_lines: Vec<usize> = cycle.chain.iter().map(|l| l.line).collect();
    for expected in [10, 11, 17, 18] {
        assert!(
            cycle_lines.contains(&expected),
            "cycle chain {cycle_lines:?} missing line {expected}:\n{}",
            render(&findings)
        );
    }
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = run_passes(&fixture("clean"), &[Pass::LockOrder, Pass::Panics]);
    assert!(findings.is_empty(), "{}", render(&findings));
}

#[test]
fn unjustified_waiver_fails_even_when_it_matches() {
    let findings = run_passes(&fixture("unjustified_waiver"), &[Pass::Panics]);
    assert_eq!(findings.len(), 1, "{}", render(&findings));
    assert!(
        findings[0].message.contains("no justification"),
        "{}",
        findings[0].message
    );
}

#[test]
fn every_seeded_panic_site_is_flagged_and_test_code_is_not() {
    let findings = run_passes(&fixture("panics_negative"), &[Pass::Panics]);
    let flagged: Vec<&str> = findings.iter().map(|f| f.file.as_str()).collect();
    for file in [
        "src/unwrap.rs",
        "src/expect.rs",
        "src/panic_macro.rs",
        "src/index.rs",
    ] {
        assert!(
            flagged.contains(&file),
            "{file} not flagged in:\n{}",
            render(&findings)
        );
    }
    // panic_macro.rs seeds two macros; everything else one site each.
    assert_eq!(findings.len(), 5, "{}", render(&findings));
    assert!(
        !flagged.contains(&"src/test_only.rs"),
        "test-only code was flagged:\n{}",
        render(&findings)
    );
}

/// Copy a fixture tree into a scratch dir so the drift test can mutate
/// the protocol source and re-bless without touching the checkout.
fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("create scratch dir");
    for entry in fs::read_dir(from).expect("read fixture dir") {
        let entry = entry.expect("fixture dir entry");
        let target = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_tree(&entry.path(), &target);
        } else {
            fs::copy(entry.path(), &target).expect("copy fixture file");
        }
    }
}

fn patch(path: &Path, from: &str, to: &str) {
    let text = fs::read_to_string(path).expect("read file to patch");
    assert!(text.contains(from), "`{from}` not found in {path:?}");
    fs::write(path, text.replace(from, to)).expect("write patched file");
}

#[test]
fn protocol_addition_without_version_bump_fails() {
    let scratch = std::env::temp_dir().join(format!(
        "seqpoint-lint-protocol-drift-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&scratch);
    copy_tree(&fixture("protocol_drift"), &scratch);

    // Bless the pristine copy: the recorded digest now matches.
    protocol::bless(&scratch).expect("bless pristine fixture");
    let findings = run_passes(&scratch, &[Pass::Protocol]);
    assert!(findings.is_empty(), "{}", render(&findings));

    // Add a wire variant without bumping PROTOCOL_VERSION.
    let source = scratch.join("src/protocol.rs");
    patch(&source, "    Bye,\n}", "    Bye,\n    Extra,\n}");
    let findings = run_passes(&scratch, &[Pass::Protocol]);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("without a") && f.message.contains("PROTOCOL_VERSION")),
        "{}",
        render(&findings)
    );

    // Bump the version: the recorded digest is now merely stale.
    patch(
        &source,
        "PROTOCOL_VERSION: u32 = 1",
        "PROTOCOL_VERSION: u32 = 2",
    );
    let findings = run_passes(&scratch, &[Pass::Protocol]);
    assert!(
        findings.iter().any(|f| f.message.contains("stale")),
        "{}",
        render(&findings)
    );

    // Re-bless: the only remaining gap is round-trip coverage of the
    // new variant.
    protocol::bless(&scratch).expect("re-bless after bump");
    let findings = run_passes(&scratch, &[Pass::Protocol]);
    assert_eq!(findings.len(), 1, "{}", render(&findings));
    assert!(
        findings[0].message.contains("Ping::Extra"),
        "{}",
        findings[0].message
    );

    // Exercise it in the round-trip tests: clean again.
    let tests = scratch.join("tests/roundtrip.rs");
    let text = fs::read_to_string(&tests).expect("read fixture tests");
    fs::write(&tests, format!("{text}// Ping::Extra\n")).expect("extend fixture tests");
    let findings = run_passes(&scratch, &[Pass::Protocol]);
    assert!(findings.is_empty(), "{}", render(&findings));

    let _ = fs::remove_dir_all(&scratch);
}
