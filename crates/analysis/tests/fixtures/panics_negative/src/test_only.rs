pub fn fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_allowed() {
        let v = [1u32, 2];
        assert_eq!(Some(v[0]).unwrap(), 1);
    }
}
