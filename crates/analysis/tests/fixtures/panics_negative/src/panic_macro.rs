pub fn seeded(flag: bool) {
    if flag {
        panic!("seeded panic");
    }
    unreachable!()
}
