pub fn seeded(v: &[u32]) -> u32 {
    v[0]
}
