pub fn seeded(x: Option<u32>) -> u32 {
    x.expect("seeded expect")
}
