use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

impl Pair {
    pub fn both(&self) -> u32 {
        let l = self.left.lock();
        let r = self.right.lock();
        match (l, r) {
            (Ok(a), Ok(b)) => *a + *b,
            _ => 0,
        }
    }

    pub fn nested_in_order(&self) -> u32 {
        let l = self.left.lock();
        let inner = self.right_value();
        drop(l);
        inner
    }

    fn right_value(&self) -> u32 {
        match self.right.lock() {
            Ok(g) => *g,
            Err(_) => 0,
        }
    }
}
