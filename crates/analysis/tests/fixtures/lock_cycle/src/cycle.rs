use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let l = self.left.lock().unwrap();
        let r = self.right.lock().unwrap();
        drop(r);
        drop(l);
    }

    pub fn backward(&self) {
        let r = self.right.lock().unwrap();
        let l = self.left.lock().unwrap();
        drop(l);
        drop(r);
    }
}
