// Fixture round-trip tests: every Ping variant must be named here.
// Ping::Hello
// Ping::Bye
