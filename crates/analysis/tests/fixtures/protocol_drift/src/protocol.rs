pub const PROTOCOL_VERSION: u32 = 1;

pub struct Payload {
    pub body: String,
}

pub enum Ping {
    Hello,
    Bye,
}
