pub fn get(lookup: Option<u32>) -> u32 {
    lookup.unwrap()
}
