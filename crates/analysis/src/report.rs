//! Finding type and output formatting. Two renderings: a human format
//! (`file:line: [pass] message`, with optional indented chain lines)
//! and GitHub workflow-annotation format
//! (`::error file=…,line=…::message`) for the CI lint job.

/// Which pass produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pass {
    LockOrder,
    Panics,
    Protocol,
}

impl Pass {
    pub fn name(self) -> &'static str {
        match self {
            Pass::LockOrder => "lock-order",
            Pass::Panics => "panics",
            Pass::Protocol => "protocol",
        }
    }

    pub fn from_name(name: &str) -> Option<Pass> {
        match name {
            "lock-order" | "lockorder" | "locks" => Some(Pass::LockOrder),
            "panics" | "panic" => Some(Pass::Panics),
            "protocol" | "drift" => Some(Pass::Protocol),
            _ => None,
        }
    }
}

/// One step in an evidence chain (e.g. a lock-acquisition path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainLink {
    pub file: String,
    pub line: usize,
    pub note: String,
}

#[derive(Clone, Debug)]
pub struct Finding {
    pub pass: Pass,
    /// Repo-relative path the finding anchors to.
    pub file: String,
    /// 1-based line, or 0 when the finding is file-level.
    pub line: usize,
    pub message: String,
    /// Supporting `file:line` steps, printed indented under the finding.
    pub chain: Vec<ChainLink>,
}

impl Finding {
    pub fn new(
        pass: Pass,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            pass,
            file: file.into(),
            line,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    pub fn with_chain(mut self, chain: Vec<ChainLink>) -> Finding {
        self.chain = chain;
        self
    }

    /// `file:line: [pass] message` plus indented chain steps.
    pub fn render_human(&self) -> String {
        let mut out = if self.line > 0 {
            format!(
                "{}:{}: [{}] {}",
                self.file,
                self.line,
                self.pass.name(),
                self.message
            )
        } else {
            format!("{}: [{}] {}", self.file, self.pass.name(), self.message)
        };
        for link in &self.chain {
            out.push_str(&format!("\n    {}:{}: {}", link.file, link.line, link.note));
        }
        out
    }

    /// GitHub workflow annotation. Chains are folded into the message
    /// with `%0A` (annotation newline escape) so the full path shows in
    /// the PR UI.
    pub fn render_github(&self) -> String {
        let mut msg = format!("[{}] {}", self.pass.name(), self.message);
        for link in &self.chain {
            msg.push_str(&format!(
                "%0A    {}:{}: {}",
                link.file, link.line, link.note
            ));
        }
        if self.line > 0 {
            format!("::error file={},line={}::{}", self.file, self.line, msg)
        } else {
            format!("::error file={}::{}", self.file, msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_format_includes_chain() {
        let f = Finding::new(Pass::LockOrder, "crates/service/src/server.rs", 42, "cycle")
            .with_chain(vec![ChainLink {
                file: "crates/service/src/sched.rs".into(),
                line: 7,
                note: "acquires sched".into(),
            }]);
        let s = f.render_human();
        assert!(s.starts_with("crates/service/src/server.rs:42: [lock-order] cycle"));
        assert!(s.contains("\n    crates/service/src/sched.rs:7: acquires sched"));
    }

    #[test]
    fn github_format_is_an_error_annotation() {
        let f = Finding::new(Pass::Panics, "a.rs", 3, "unwaived unwrap()");
        assert_eq!(
            f.render_github(),
            "::error file=a.rs,line=3::[panics] unwaived unwrap()"
        );
    }

    #[test]
    fn pass_names_round_trip() {
        for p in [Pass::LockOrder, Pass::Panics, Pass::Protocol] {
            assert_eq!(Pass::from_name(p.name()), Some(p));
        }
        assert_eq!(Pass::from_name("nope"), None);
    }
}
