//! Source scrubbing: blank out comments and literal contents while
//! preserving byte offsets and newlines, so every downstream pass can
//! pattern-match tokens without being fooled by `"…lock()…"` inside a
//! string or a commented-out `unwrap()`. The scrubbed buffer has the
//! same length as the input and the same newline positions, so byte
//! offsets map to identical line numbers in both.
//!
//! Handled syntax: `//` line comments, nested `/* */` block comments,
//! `"…"` strings with escapes, `r"…"`/`r#"…"#` raw strings (any hash
//! count, `b`/`br` prefixes too), character literals including escapes,
//! and lifetimes (`'a`, which must *not* be eaten as an unterminated
//! char literal).

/// Blank comments and literal contents in `src`, returning a same-length
/// byte buffer. Newlines inside comments/strings are preserved so line
/// numbers stay aligned; every other masked byte becomes a space.
/// String/char delimiters themselves are kept (so token scanners still
/// see that *a* literal sat there).
pub fn scrub(src: &str) -> Vec<u8> {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let n = bytes.len();
    let mut i = 0;

    // Blank the half-open byte range, keeping newlines.
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in &mut out[from..to.min(n)] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < n {
        match bytes[i] {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"…", r#"…"#, br#"…"# …: count hashes, find the
                // matching `"##…#` terminator.
                let mut j = i + 1;
                if bytes[i] == b'b' && j < n && bytes[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < n && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                debug_assert!(j < n && bytes[j] == b'"');
                let content_start = j + 1;
                let mut k = content_start;
                'scan: while k < n {
                    if bytes[k] == b'"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && bytes[k + 1 + h] == b'#' {
                            h += 1;
                        }
                        if h == hashes {
                            break 'scan;
                        }
                    }
                    k += 1;
                }
                blank(&mut out, content_start, k);
                i = (k + 1 + hashes).min(n);
            }
            b'b' if i + 1 < n && bytes[i + 1] == b'"' => {
                // Byte string: delegate to the normal string scan.
                i = scrub_plain_string(bytes, &mut out, i + 1, blank);
            }
            b'"' => {
                i = scrub_plain_string(bytes, &mut out, i, blank);
            }
            b'\'' => {
                i = scrub_char_or_lifetime(bytes, &mut out, i, blank);
            }
            _ => i += 1,
        }
    }
    out
}

/// Whether `r` / `b` at `i` starts a raw (byte) string literal rather
/// than an identifier like `rounds` or a lone `b`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Must not be the tail of a longer identifier (`encoder"…"` etc.).
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i + 1;
    if bytes[i] == b'b' {
        if j < bytes.len() && bytes[j] == b'r' {
            j += 1;
        } else {
            return false;
        }
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Scrub a `"…"` string starting at the opening quote; returns the
/// index one past the closing quote.
fn scrub_plain_string(
    bytes: &[u8],
    out: &mut [u8],
    open: usize,
    blank: impl Fn(&mut [u8], usize, usize),
) -> usize {
    let n = bytes.len();
    let mut k = open + 1;
    while k < n {
        match bytes[k] {
            b'\\' => k += 2,
            b'"' => break,
            _ => k += 1,
        }
    }
    blank(out, open + 1, k.min(n));
    (k + 1).min(n)
}

/// Distinguish `'a'` / `'\n'` (char literal, scrub contents) from `'a`
/// (lifetime, keep). Returns the index to resume scanning at.
fn scrub_char_or_lifetime(
    bytes: &[u8],
    out: &mut [u8],
    open: usize,
    blank: impl Fn(&mut [u8], usize, usize),
) -> usize {
    let n = bytes.len();
    let next = open + 1;
    if next >= n {
        return n;
    }
    if bytes[next] == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut k = next + 1;
        while k < n && bytes[k] != b'\'' {
            k += 1;
        }
        blank(out, open + 1, k);
        return (k + 1).min(n);
    }
    // `'X'` for any single char (possibly multibyte): find a closing
    // quote within the longest UTF-8 scalar (4 bytes).
    for len in 1..=4usize {
        if next + len < n && bytes[next + len] == b'\'' {
            // `''` is not a char literal and `'a'` where `a` would also
            // read as a lifetime is resolved in favor of the literal,
            // matching rustc.
            if len == 1 && bytes[next] == b'\'' {
                break;
            }
            blank(out, open + 1, next + len);
            return next + len + 1;
        }
    }
    // Lifetime (`'a`, `'static`, `'_`) or stray quote: keep as-is.
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrubbed(src: &str) -> String {
        String::from_utf8(scrub(src)).unwrap()
    }

    #[test]
    fn line_and_block_comments_are_blanked() {
        let s = scrubbed("a(); // x.lock()\nb(); /* unwrap()\n still */ c();");
        assert!(!s.contains("lock"));
        assert!(!s.contains("unwrap"));
        assert!(s.contains("a();"));
        assert!(s.contains("c();"));
        assert_eq!(s.matches('\n').count(), 2, "newlines preserved");
    }

    #[test]
    fn nested_block_comments() {
        let s = scrubbed("x /* a /* b */ c */ y");
        assert!(s.starts_with('x'));
        assert!(s.ends_with('y'));
        assert!(!s.contains('a'));
        assert!(!s.contains('c'));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_stay() {
        let s = scrubbed(r#"let x = "foo.unwrap()"; y"#);
        assert!(!s.contains("unwrap"));
        assert!(s.contains('"'));
        assert!(s.contains("let x ="));
    }

    #[test]
    fn escaped_quotes_do_not_end_the_string() {
        let s = scrubbed(r#"f("a\"b.lock()"); g()"#);
        assert!(!s.contains("lock"));
        assert!(s.contains("g()"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = scrubbed("let x = r#\"panic!()\"#; done()");
        assert!(!s.contains("panic"));
        assert!(s.contains("done()"));
        let s = scrubbed("let x = br##\"x.expect(\"y\")\"##; done()");
        assert!(!s.contains("expect"));
        assert!(s.contains("done()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = scrubbed("let c = 'x'; fn f<'a>(v: &'a str) {} let n = '\\n';");
        assert!(!s.contains('x'), "char literal content blanked");
        assert!(s.contains("'a>"), "lifetime kept");
        assert!(s.contains("&'a str"), "lifetime in reference kept");
    }

    #[test]
    fn same_length_and_line_structure() {
        let src = "a\n\"two\nlines\"\n// c\n";
        let out = scrub(src);
        assert_eq!(out.len(), src.len());
        let lines_in: Vec<usize> = src
            .bytes()
            .enumerate()
            .filter(|(_, b)| *b == b'\n')
            .map(|(i, _)| i)
            .collect();
        let lines_out: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, b)| **b == b'\n')
            .map(|(i, _)| i)
            .collect();
        assert_eq!(lines_in, lines_out);
    }
}
