//! `seqpoint-lint` — run the workspace static-analysis passes.
//!
//! Usage:
//!   seqpoint-lint [--root PATH] [--pass lock-order,panics,protocol]
//!                 [--github] [--bless-protocol]
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or configuration error.

use std::path::PathBuf;

use seqpoint_analysis::report::Pass;
use seqpoint_analysis::{all_passes, protocol, run_passes};

const USAGE: &str = "\
seqpoint-lint: workspace static analysis (lock-order, panics, protocol drift)

USAGE:
    seqpoint-lint [OPTIONS]

OPTIONS:
    --root <PATH>        Repository root (default: current directory)
    --pass <LIST>        Comma-separated passes to run:
                         lock-order, panics, protocol (default: all)
    --github             Emit findings as GitHub workflow annotations
                         (::error file=...,line=...::message)
    --bless-protocol     Recompute and commit the protocol frame digest
                         into analysis/protocol_digest.toml, then exit
    -h, --help           Show this help
";

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let mut root = PathBuf::from(".");
    let mut passes = all_passes();
    let mut github = false;
    let mut bless = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_error("--root requires a path"),
            },
            "--pass" => match args.next() {
                Some(list) => {
                    let mut selected = Vec::new();
                    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        match Pass::from_name(name) {
                            Some(p) => selected.push(p),
                            None => {
                                return usage_error(&format!(
                                    "unknown pass `{name}` (expected lock-order, panics, protocol)"
                                ))
                            }
                        }
                    }
                    if selected.is_empty() {
                        return usage_error("--pass requires at least one pass name");
                    }
                    passes = selected;
                }
                None => return usage_error("--pass requires a comma-separated list"),
            },
            "--github" => github = true,
            "--bless-protocol" => bless = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return 0;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if bless {
        return match protocol::bless(&root) {
            Ok(()) => {
                println!(
                    "seqpoint-lint: blessed {} from current sources",
                    protocol::DIGEST_PATH
                );
                0
            }
            Err(e) => {
                eprintln!("seqpoint-lint: {e}");
                2
            }
        };
    }

    let findings = run_passes(&root, &passes);
    for f in &findings {
        if github {
            println!("{}", f.render_github());
        } else {
            println!("{}", f.render_human());
        }
    }
    let pass_names: Vec<&str> = passes.iter().map(|p| p.name()).collect();
    if findings.is_empty() {
        eprintln!("seqpoint-lint: clean ({})", pass_names.join(", "));
        0
    } else {
        eprintln!(
            "seqpoint-lint: {} finding(s) ({})",
            findings.len(),
            pass_names.join(", ")
        );
        1
    }
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("seqpoint-lint: {msg}\n\n{USAGE}");
    2
}
