//! Protocol-drift check. Two invariants, cross-checked against the
//! committed record in `analysis/protocol_digest.toml`:
//!
//! 1. every variant of the wire enums (`Request`, `Response`,
//!    `WorkerTask`, `WorkerReply`) is exercised by the round-trip
//!    tests (`Enum::Variant` must appear in the test sources), and
//! 2. whenever the frame surface changes (detected by an FNV-1a-64
//!    digest over the normalized token stream of the wire types),
//!    `PROTOCOL_VERSION` must be bumped and the record re-blessed with
//!    `seqpoint-lint --bless-protocol`.

use std::path::Path;

use crate::config;
use crate::model::{tokenize, SourceFile, Tok};
use crate::report::{Finding, Pass};

pub const DIGEST_PATH: &str = "analysis/protocol_digest.toml";

#[derive(Clone, Debug)]
pub struct ProtocolConfig {
    /// Repo-relative path of the protocol source.
    pub source: String,
    /// Repo-relative paths of the round-trip test sources.
    pub tests: Vec<String>,
    /// Wire enums whose variants must appear in the tests.
    pub frames: Vec<String>,
    /// Additional types included in the frame-surface digest.
    pub types: Vec<String>,
    /// PROTOCOL_VERSION recorded at the last bless.
    pub version: u32,
    /// Frame-surface digest recorded at the last bless.
    pub digest: String,
}

impl ProtocolConfig {
    pub fn load(root: &Path) -> Result<ProtocolConfig, String> {
        let path = root.join(DIGEST_PATH);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = config::parse(&text).map_err(|e| format!("{DIGEST_PATH}: {e}"))?;
        let list = |k: &str| -> Vec<String> {
            doc.root.get_list(k).map(|l| l.to_vec()).unwrap_or_default()
        };
        Ok(ProtocolConfig {
            source: doc
                .root
                .get_str("source")
                .ok_or_else(|| format!("{DIGEST_PATH}: missing `source`"))?
                .to_string(),
            tests: list("tests"),
            frames: list("frames"),
            types: list("types"),
            version: doc.root.get_int("version").unwrap_or(0).max(0) as u32,
            digest: doc.root.get_str("digest").unwrap_or("").to_string(),
        })
    }
}

/// FNV-1a-64 over the normalized token stream of the named items (in
/// declared order). Whitespace and comments do not affect the digest;
/// any token change — a field, a variant, a type — does. Returns the
/// digest string and the names that were not found in the source.
pub fn compute_digest(file: &SourceFile, names: &[String]) -> (String, Vec<String>) {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    let mut missing = Vec::new();
    for name in names {
        let span = file
            .enums
            .iter()
            .find(|e| &e.name == name)
            .map(|e| e.span)
            .or_else(|| {
                file.structs
                    .iter()
                    .find(|s| &s.name == name)
                    .map(|s| s.span)
            });
        let Some((start, end)) = span else {
            missing.push(name.clone());
            continue;
        };
        for t in tokenize(&file.scrubbed[start..end.min(file.scrubbed.len())]) {
            match &t.tok {
                Tok::Ident(id) => feed(id.as_bytes()),
                Tok::Punct(b) => feed(&[*b]),
            }
            feed(&[0xff]); // token separator
        }
        feed(&[0xfe]); // item separator
    }
    (format!("fnv1a64:{hash:016x}"), missing)
}

/// Extract `PROTOCOL_VERSION` from `const PROTOCOL_VERSION: u32 = N;`.
pub fn current_version(file: &SourceFile) -> Option<u32> {
    let tokens = tokenize(&file.scrubbed);
    let pos = tokens
        .iter()
        .position(|t| t.ident() == Some("PROTOCOL_VERSION"))?;
    let eq = tokens[pos..].iter().position(|t| t.is_punct(b'='))? + pos;
    tokens[eq + 1..]
        .iter()
        .find_map(|t| t.ident())
        .and_then(|s| s.parse().ok())
}

/// Run the protocol-drift pass.
pub fn run(root: &Path, cfg: &ProtocolConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let src_path = root.join(&cfg.source);
    let raw = match std::fs::read_to_string(&src_path) {
        Ok(r) => r,
        Err(e) => {
            findings.push(Finding::new(
                Pass::Protocol,
                DIGEST_PATH,
                0,
                format!("cannot read protocol source {}: {e}", cfg.source),
            ));
            return findings;
        }
    };
    let file = SourceFile::parse(cfg.source.clone(), raw);

    // Digest + version drift.
    let all_names: Vec<String> = cfg.frames.iter().chain(cfg.types.iter()).cloned().collect();
    let (digest, missing) = compute_digest(&file, &all_names);
    for name in &missing {
        findings.push(Finding::new(
            Pass::Protocol,
            cfg.source.clone(),
            0,
            format!("wire type `{name}` listed in {DIGEST_PATH} not found in source"),
        ));
    }
    let version = current_version(&file);
    match version {
        None => findings.push(Finding::new(
            Pass::Protocol,
            cfg.source.clone(),
            0,
            "PROTOCOL_VERSION const not found in protocol source".to_string(),
        )),
        Some(v) => {
            if digest != cfg.digest && v == cfg.version {
                findings.push(Finding::new(
                    Pass::Protocol,
                    cfg.source.clone(),
                    0,
                    format!(
                        "frame surface changed (digest {digest} != recorded {}) without a \
                         PROTOCOL_VERSION bump — bump the version, then run \
                         `seqpoint-lint --bless-protocol`",
                        if cfg.digest.is_empty() {
                            "<none>"
                        } else {
                            &cfg.digest
                        }
                    ),
                ));
            } else if digest != cfg.digest {
                findings.push(Finding::new(
                    Pass::Protocol,
                    DIGEST_PATH,
                    0,
                    format!(
                        "frame digest is stale (surface changed and version bumped to {v}); \
                         run `seqpoint-lint --bless-protocol` to re-record"
                    ),
                ));
            } else if v != cfg.version {
                findings.push(Finding::new(
                    Pass::Protocol,
                    DIGEST_PATH,
                    0,
                    format!(
                        "PROTOCOL_VERSION is {v} but {DIGEST_PATH} records {}; run \
                         `seqpoint-lint --bless-protocol` to re-record",
                        cfg.version
                    ),
                ));
            }
        }
    }

    // Variant coverage in the round-trip tests.
    let mut test_texts = Vec::new();
    for t in &cfg.tests {
        match std::fs::read_to_string(root.join(t)) {
            Ok(text) => test_texts.push(text),
            Err(e) => findings.push(Finding::new(
                Pass::Protocol,
                DIGEST_PATH,
                0,
                format!("cannot read round-trip test source {t}: {e}"),
            )),
        }
    }
    for frame in &cfg.frames {
        let Some(en) = file.enums.iter().find(|e| &e.name == frame) else {
            continue; // already reported as missing
        };
        let line = file.line_of(en.span.0);
        for variant in &en.variants {
            let needle = format!("{frame}::{variant}");
            if !test_texts.iter().any(|t| t.contains(&needle)) {
                findings.push(Finding::new(
                    Pass::Protocol,
                    cfg.source.clone(),
                    line,
                    format!(
                        "`{needle}` is not exercised by the round-trip tests ({})",
                        cfg.tests.join(", ")
                    ),
                ));
            }
        }
    }

    findings.sort_by(|x, y| (&x.file, x.line, &x.message).cmp(&(&y.file, y.line, &y.message)));
    findings
}

/// Recompute the digest and current version and rewrite the committed
/// record, preserving the configured source/tests/frames/types lists.
pub fn bless(root: &Path) -> Result<(), String> {
    let cfg = ProtocolConfig::load(root)?;
    let src_path = root.join(&cfg.source);
    let raw =
        std::fs::read_to_string(&src_path).map_err(|e| format!("{}: {e}", src_path.display()))?;
    let file = SourceFile::parse(cfg.source.clone(), raw);
    let all_names: Vec<String> = cfg.frames.iter().chain(cfg.types.iter()).cloned().collect();
    let (digest, missing) = compute_digest(&file, &all_names);
    if !missing.is_empty() {
        return Err(format!(
            "cannot bless: wire types not found in {}: {}",
            cfg.source,
            missing.join(", ")
        ));
    }
    let version = current_version(&file)
        .ok_or_else(|| format!("cannot bless: PROTOCOL_VERSION not found in {}", cfg.source))?;
    let quoted = |items: &[String]| -> String {
        items
            .iter()
            .map(|i| format!("\"{}\"", config::escape(i)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let out = format!(
        "# Protocol frame digest — maintained by `seqpoint-lint --bless-protocol`.\n\
         # The digest covers the normalized token stream of the wire types below;\n\
         # any surface change requires a PROTOCOL_VERSION bump and a re-bless.\n\
         source = \"{}\"\n\
         tests = [{}]\n\
         frames = [{}]\n\
         types = [{}]\n\
         version = {}\n\
         digest = \"{}\"\n",
        config::escape(&cfg.source),
        quoted(&cfg.tests),
        quoted(&cfg.frames),
        quoted(&cfg.types),
        version,
        digest,
    );
    std::fs::write(root.join(DIGEST_PATH), out).map_err(|e| format!("write {DIGEST_PATH}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "pub const PROTOCOL_VERSION: u32 = 3;\n\
                       pub enum Request { Ping, Submit { spec: JobSpec } }\n\
                       pub struct JobSpec { pub name: String }\n";

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("protocol.rs".into(), src.into())
    }

    #[test]
    fn version_extraction() {
        assert_eq!(current_version(&parse(SRC)), Some(3));
        assert_eq!(current_version(&parse("fn x() {}")), None);
    }

    #[test]
    fn digest_ignores_whitespace_but_sees_surface() {
        let names = vec!["Request".to_string(), "JobSpec".to_string()];
        let (d1, m1) = compute_digest(&parse(SRC), &names);
        assert!(m1.is_empty());
        // Reformatting only: same digest.
        let reformatted = SRC.replace("{ Ping, Submit", "{\n  Ping,\n  Submit");
        let (d2, _) = compute_digest(&parse(&reformatted), &names);
        assert_eq!(d1, d2);
        // Comment-only change: same digest.
        let commented = SRC.replace("pub enum Request", "/* wire */ pub enum Request");
        let (d3, _) = compute_digest(&parse(&commented), &names);
        assert_eq!(d1, d3);
        // New variant: digest changes.
        let grown = SRC.replace("Ping,", "Ping, Cancel { id: String },");
        let (d4, _) = compute_digest(&parse(&grown), &names);
        assert_ne!(d1, d4);
    }

    #[test]
    fn missing_items_are_reported() {
        let names = vec!["Nope".to_string()];
        let (_, missing) = compute_digest(&parse(SRC), &names);
        assert_eq!(missing, vec!["Nope".to_string()]);
    }
}
