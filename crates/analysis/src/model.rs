//! Lightweight item model for Rust sources: a byte-offset tokenizer and
//! a scope-tracking walk that recovers just enough structure for the
//! lint passes — structs (field name → type), enums (variant names),
//! impl blocks (method → self type), free functions with param types,
//! and `#[cfg(test)]` / `#[test]` regions. This is deliberately not a
//! grammar-complete parser; it only needs to be right for the
//! workspace's own style of code, and every heuristic is covered by the
//! fixture tests.

use crate::scrub::scrub;

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword, or numeric literal run (`[A-Za-z0-9_]+`).
    Ident(String),
    /// Any other non-whitespace byte.
    Punct(u8),
}

#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    /// Byte offset of the token start in the (scrubbed == raw) buffer.
    pub off: usize,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            Tok::Punct(_) => None,
        }
    }

    pub fn is_punct(&self, b: u8) -> bool {
        self.tok == Tok::Punct(b)
    }
}

/// Tokenize a scrubbed buffer. Literal delimiters survive scrubbing and
/// show up as puncts; blanked contents are whitespace and vanish.
pub fn tokenize(scrubbed: &[u8]) -> Vec<Token> {
    let mut out = Vec::new();
    let n = scrubbed.len();
    let mut i = 0;
    while i < n {
        let b = scrubbed[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_alphanumeric() || b == b'_' {
            let start = i;
            while i < n && (scrubbed[i].is_ascii_alphanumeric() || scrubbed[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(String::from_utf8_lossy(&scrubbed[start..i]).into_owned()),
                off: start,
            });
        } else {
            out.push(Token {
                tok: Tok::Punct(b),
                off: i,
            });
            i += 1;
        }
    }
    out
}

/// A function item (free or method), with its body byte range.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl` type, if this is a method.
    pub self_ty: Option<String>,
    /// Parameter name → principal type name (wrappers stripped).
    pub params: Vec<(String, String)>,
    /// Byte offset of the `fn` keyword.
    pub sig_off: usize,
    /// Byte range of the body including both braces.
    pub body: (usize, usize),
    /// `#[test]`, or defined inside a `#[cfg(test)]` module.
    pub is_test: bool,
}

#[derive(Clone, Debug)]
pub struct StructItem {
    pub name: String,
    /// Field name → principal type name.
    pub fields: Vec<(String, String)>,
    /// Byte range from the `struct` keyword through the item end.
    pub span: (usize, usize),
}

#[derive(Clone, Debug)]
pub struct EnumItem {
    pub name: String,
    pub variants: Vec<String>,
    /// Byte range from the `enum` keyword through the close brace.
    pub span: (usize, usize),
}

/// One parsed source file.
pub struct SourceFile {
    /// Path relative to the analysis root, forward slashes.
    pub path: String,
    pub raw: String,
    pub scrubbed: Vec<u8>,
    line_starts: Vec<usize>,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
    /// Byte ranges of `#[cfg(test)]` module bodies and `#[test]` fn
    /// bodies — everything the panic pass must ignore.
    pub test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn parse(path: String, raw: String) -> SourceFile {
        let scrubbed = scrub(&raw);
        let line_starts = std::iter::once(0)
            .chain(
                raw.bytes()
                    .enumerate()
                    .filter(|(_, b)| *b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let mut file = SourceFile {
            path,
            raw,
            scrubbed,
            line_starts,
            fns: Vec::new(),
            structs: Vec::new(),
            enums: Vec::new(),
            test_ranges: Vec::new(),
        };
        let tokens = tokenize(&file.scrubbed);
        Walker::new(&mut file, &tokens).walk();
        file
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, off: usize) -> usize {
        match self.line_starts.binary_search(&off) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The raw text of the 1-based line.
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|e| e.saturating_sub(1))
            .unwrap_or(self.raw.len());
        &self.raw[start..end.max(start)]
    }

    pub fn in_test_code(&self, off: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| off >= s && off < e)
    }
}

/// Find the byte offset of the `}` matching the `{` at `open` in a
/// scrubbed buffer (string contents are blanked, so counting is safe).
pub fn matching_brace(scrubbed: &[u8], open: usize) -> usize {
    debug_assert_eq!(scrubbed.get(open), Some(&b'{'));
    let mut depth = 0usize;
    for (i, b) in scrubbed.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    scrubbed.len().saturating_sub(1)
}

/// Principal type name of a type token span: the first capitalized or
/// primitive ident that is not a smart-pointer wrapper. `&Arc<Shared>`
/// → `Shared`, `&mut TcpStream` → `TcpStream`, `u64` → `u64`.
pub fn principal_type(tokens: &[Token]) -> String {
    const WRAPPERS: &[&str] = &["Arc", "Rc", "Box", "dyn", "impl", "mut", "const"];
    for t in tokens {
        if let Some(id) = t.ident() {
            if id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                continue;
            }
            if WRAPPERS.contains(&id) {
                continue;
            }
            // For `Arc<Shared>` the first non-wrapper ident IS the
            // payload, so first hit wins.
            return id.to_string();
        }
    }
    String::new()
}

struct Walker<'a> {
    file: &'a mut SourceFile,
    tokens: &'a [Token],
    i: usize,
    /// Stack of (impl type if any, is_test_mod) per open brace scope.
    scopes: Vec<(Option<String>, bool)>,
    pending_test_attr: bool,
    pending_cfg_test: bool,
}

impl<'a> Walker<'a> {
    fn new(file: &'a mut SourceFile, tokens: &'a [Token]) -> Walker<'a> {
        Walker {
            file,
            tokens,
            i: 0,
            scopes: Vec::new(),
            pending_test_attr: false,
            pending_cfg_test: false,
        }
    }

    fn in_test_scope(&self) -> bool {
        self.scopes.iter().any(|(_, t)| *t)
    }

    fn impl_ty(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|(ty, _)| ty.clone())
    }

    fn walk(&mut self) {
        while self.i < self.tokens.len() {
            let t = &self.tokens[self.i];
            match &t.tok {
                Tok::Punct(b'#') => self.take_attr(),
                Tok::Punct(b'{') => {
                    self.scopes.push((None, false));
                    self.clear_attrs();
                    self.i += 1;
                }
                Tok::Punct(b'}') => {
                    self.scopes.pop();
                    self.clear_attrs();
                    self.i += 1;
                }
                Tok::Ident(id) => match id.as_str() {
                    "fn" => self.take_fn(),
                    "impl" => self.take_impl(),
                    "mod" => self.take_mod(),
                    "struct" => self.take_struct(),
                    "enum" => self.take_enum(),
                    // Visibility / qualifiers keep pending attrs alive.
                    "pub" | "unsafe" | "async" | "crate" | "in" => self.i += 1,
                    _ => {
                        self.clear_attrs();
                        self.i += 1;
                    }
                },
                Tok::Punct(b'(') | Tok::Punct(b')') => self.i += 1,
                _ => {
                    self.clear_attrs();
                    self.i += 1;
                }
            }
        }
    }

    fn clear_attrs(&mut self) {
        self.pending_test_attr = false;
        self.pending_cfg_test = false;
    }

    /// Consume `#[...]`, noting `#[test]` and `#[cfg(test)]`-style
    /// attributes (any cfg attr whose args mention `test`).
    fn take_attr(&mut self) {
        self.i += 1; // '#'
        if self.i < self.tokens.len() && self.tokens[self.i].is_punct(b'!') {
            self.i += 1; // inner attr `#![...]`
        }
        if self.i >= self.tokens.len() || !self.tokens[self.i].is_punct(b'[') {
            return;
        }
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        while self.i < self.tokens.len() {
            match &self.tokens[self.i].tok {
                Tok::Punct(b'[') => depth += 1,
                Tok::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        break;
                    }
                }
                Tok::Ident(id) => idents.push(id),
                _ => {}
            }
            self.i += 1;
        }
        if idents.as_slice() == ["test"] {
            self.pending_test_attr = true;
        }
        if idents.first() == Some(&"cfg") && idents.contains(&"test") {
            self.pending_cfg_test = true;
        }
    }

    /// Advance to the first `{` or depth-0 `;`, tracking (), [] and <>
    /// depth so generic args and array types don't fool the scan.
    /// Returns the token index of the terminator (not consumed).
    fn scan_to_body(&self, mut j: usize) -> usize {
        let (mut paren, mut brack, mut angle) = (0i32, 0i32, 0i32);
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Punct(b'(') => paren += 1,
                Tok::Punct(b')') => paren -= 1,
                Tok::Punct(b'[') => brack += 1,
                Tok::Punct(b']') => brack -= 1,
                Tok::Punct(b'<') => angle += 1,
                Tok::Punct(b'>') => {
                    // `->` is not a closing angle bracket.
                    if j > 0 && self.tokens[j - 1].is_punct(b'-') {
                    } else {
                        angle -= 1;
                    }
                }
                Tok::Punct(b'{') if paren == 0 && brack == 0 && angle <= 0 => return j,
                Tok::Punct(b';') if paren == 0 && brack == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        j
    }

    fn take_fn(&mut self) {
        let sig_off = self.tokens[self.i].off;
        let is_test = self.pending_test_attr || self.in_test_scope();
        self.clear_attrs();
        self.i += 1; // 'fn'
        let name = match self.tokens.get(self.i).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return,
        };
        self.i += 1;
        // Optional generics.
        if self.tokens.get(self.i).is_some_and(|t| t.is_punct(b'<')) {
            let mut depth = 0i32;
            while self.i < self.tokens.len() {
                match &self.tokens[self.i].tok {
                    Tok::Punct(b'<') => depth += 1,
                    Tok::Punct(b'>') if !self.tokens[self.i - 1].is_punct(b'-') => {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                self.i += 1;
            }
        }
        // Params.
        let mut params = Vec::new();
        if self.tokens.get(self.i).is_some_and(|t| t.is_punct(b'(')) {
            let start = self.i + 1;
            let mut depth = 0i32;
            let mut j = self.i;
            while j < self.tokens.len() {
                match &self.tokens[j].tok {
                    Tok::Punct(b'(') => depth += 1,
                    Tok::Punct(b')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            params = parse_params(&self.tokens[start..j]);
            self.i = j + 1;
        }
        // Body or `;` for trait declarations.
        let term = self.scan_to_body(self.i);
        if term >= self.tokens.len() || self.tokens[term].is_punct(b';') {
            self.i = term.saturating_add(1).min(self.tokens.len());
            return;
        }
        let open = self.tokens[term].off;
        let close = matching_brace(&self.file.scrubbed, open);
        self.file.fns.push(FnItem {
            name,
            self_ty: self.impl_ty(),
            params,
            sig_off,
            body: (open, close + 1),
            is_test,
        });
        if is_test {
            self.file.test_ranges.push((open, close + 1));
        }
        // Descend into the body so nested items are seen.
        self.scopes.push((None, false));
        self.i = term + 1;
    }

    fn take_impl(&mut self) {
        self.clear_attrs();
        let start = self.i;
        let term = self.scan_to_body(self.i + 1);
        if term >= self.tokens.len() || self.tokens[term].is_punct(b';') {
            self.i = term + 1;
            return;
        }
        // Header tokens between `impl` and `{`; the self type is the
        // first path ident after the last `for` (trait impls) or after
        // the impl generics (inherent impls).
        let header = &self.tokens[start + 1..term];
        let mut type_start = 0usize;
        // Skip `impl<...>` generics.
        if header.first().is_some_and(|t| t.is_punct(b'<')) {
            let mut depth = 0i32;
            for (k, t) in header.iter().enumerate() {
                match &t.tok {
                    Tok::Punct(b'<') => depth += 1,
                    Tok::Punct(b'>') if k == 0 || !header[k - 1].is_punct(b'-') => {
                        depth -= 1;
                        if depth == 0 {
                            type_start = k + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        for (k, t) in header.iter().enumerate() {
            if t.ident() == Some("for") {
                type_start = k + 1;
            }
        }
        let ty = header[type_start.min(header.len())..]
            .iter()
            .find_map(|t| t.ident())
            .map(|s| s.to_string());
        self.scopes.push((ty, false));
        self.i = term + 1;
    }

    fn take_mod(&mut self) {
        let is_test = self.pending_cfg_test || self.in_test_scope();
        self.clear_attrs();
        self.i += 1; // 'mod'
        self.i += 1; // name
        match self.tokens.get(self.i).map(|t| &t.tok) {
            Some(Tok::Punct(b'{')) => {
                let open = self.tokens[self.i].off;
                if is_test {
                    let close = matching_brace(&self.file.scrubbed, open);
                    self.file.test_ranges.push((open, close + 1));
                }
                self.scopes.push((None, is_test));
                self.i += 1;
            }
            _ => self.i += 1, // `mod name;`
        }
    }

    fn take_struct(&mut self) {
        self.clear_attrs();
        let kw_off = self.tokens[self.i].off;
        self.i += 1; // 'struct'
        let name = match self.tokens.get(self.i).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return,
        };
        self.i += 1;
        let term = self.scan_to_body(self.i);
        if term >= self.tokens.len() || self.tokens[term].is_punct(b';') {
            // Unit or tuple struct (`struct Foo;` / `struct Foo(T);`).
            let end = self
                .tokens
                .get(term)
                .map(|t| t.off + 1)
                .unwrap_or(self.file.scrubbed.len());
            self.file.structs.push(StructItem {
                name,
                fields: Vec::new(),
                span: (kw_off, end),
            });
            self.i = term + 1;
            return;
        }
        let open = self.tokens[term].off;
        let close = matching_brace(&self.file.scrubbed, open);
        // Fields: at depth 1 inside the braces, `name : Type` split on
        // top-level commas.
        let mut fields = Vec::new();
        let body: Vec<&Token> = self.tokens[term + 1..]
            .iter()
            .take_while(|t| t.off < close)
            .collect();
        let mut field_toks: Vec<Vec<Token>> = vec![Vec::new()];
        let (mut paren, mut brack, mut angle, mut brace) = (0i32, 0i32, 0i32, 0i32);
        for (k, t) in body.iter().enumerate() {
            match &t.tok {
                Tok::Punct(b'(') => paren += 1,
                Tok::Punct(b')') => paren -= 1,
                Tok::Punct(b'[') => brack += 1,
                Tok::Punct(b']') => brack -= 1,
                Tok::Punct(b'{') => brace += 1,
                Tok::Punct(b'}') => brace -= 1,
                Tok::Punct(b'<') => angle += 1,
                Tok::Punct(b'>') if k == 0 || !body[k - 1].is_punct(b'-') => angle -= 1,
                Tok::Punct(b',') if paren == 0 && brack == 0 && angle == 0 && brace == 0 => {
                    field_toks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
            field_toks.last_mut().expect("non-empty").push((*t).clone());
        }
        for ft in &field_toks {
            // Strip attributes and `pub`/`pub(crate)` prefixes.
            let mut k = 0;
            while k < ft.len() {
                if ft[k].is_punct(b'#') {
                    let mut depth = 0i32;
                    k += 1;
                    while k < ft.len() {
                        match &ft[k].tok {
                            Tok::Punct(b'[') => depth += 1,
                            Tok::Punct(b']') => {
                                depth -= 1;
                                if depth == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                } else if ft[k].ident() == Some("pub") {
                    k += 1;
                    if ft.get(k).is_some_and(|t| t.is_punct(b'(')) {
                        while k < ft.len() && !ft[k].is_punct(b')') {
                            k += 1;
                        }
                        k += 1;
                    }
                } else {
                    break;
                }
            }
            if k + 1 < ft.len() && ft[k + 1].is_punct(b':') {
                if let Some(fname) = ft[k].ident() {
                    fields.push((fname.to_string(), principal_type(&ft[k + 2..])));
                }
            }
        }
        self.file.structs.push(StructItem {
            name,
            fields,
            span: (kw_off, close + 1),
        });
        // Skip past the struct body entirely — no items inside.
        while self.i < self.tokens.len() && self.tokens[self.i].off <= close {
            self.i += 1;
        }
    }

    fn take_enum(&mut self) {
        self.clear_attrs();
        let kw_off = self.tokens[self.i].off;
        self.i += 1; // 'enum'
        let name = match self.tokens.get(self.i).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return,
        };
        self.i += 1;
        let term = self.scan_to_body(self.i);
        if term >= self.tokens.len() || self.tokens[term].is_punct(b';') {
            self.i = term + 1;
            return;
        }
        let open = self.tokens[term].off;
        let close = matching_brace(&self.file.scrubbed, open);
        let body: Vec<&Token> = self.tokens[term + 1..]
            .iter()
            .take_while(|t| t.off < close)
            .collect();
        let mut variants = Vec::new();
        let mut at_variant = true;
        let (mut paren, mut brack, mut angle, mut brace) = (0i32, 0i32, 0i32, 0i32);
        let mut k = 0;
        while k < body.len() {
            let t = body[k];
            match &t.tok {
                Tok::Punct(b'#') if at_variant && paren + brack + brace == 0 => {
                    // Skip variant attributes.
                    let mut depth = 0i32;
                    k += 1;
                    while k < body.len() {
                        match &body[k].tok {
                            Tok::Punct(b'[') => depth += 1,
                            Tok::Punct(b']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                Tok::Punct(b'(') => paren += 1,
                Tok::Punct(b')') => paren -= 1,
                Tok::Punct(b'[') => brack += 1,
                Tok::Punct(b']') => brack -= 1,
                Tok::Punct(b'{') => brace += 1,
                Tok::Punct(b'}') => brace -= 1,
                Tok::Punct(b'<') => angle += 1,
                Tok::Punct(b'>') if k == 0 || !body[k - 1].is_punct(b'-') => angle -= 1,
                Tok::Punct(b',') if paren == 0 && brack == 0 && angle == 0 && brace == 0 => {
                    at_variant = true;
                }
                Tok::Ident(id) if at_variant && paren + brack + brace == 0 => {
                    variants.push(id.clone());
                    at_variant = false;
                }
                _ => {}
            }
            k += 1;
        }
        self.file.enums.push(EnumItem {
            name,
            variants,
            span: (kw_off, close + 1),
        });
        while self.i < self.tokens.len() && self.tokens[self.i].off <= close {
            self.i += 1;
        }
    }
}

/// Split a parameter token span on top-level commas and extract
/// `name: Type` pairs, skipping `self` receivers.
fn parse_params(tokens: &[Token]) -> Vec<(String, String)> {
    let mut groups: Vec<Vec<Token>> = vec![Vec::new()];
    let (mut paren, mut brack, mut angle) = (0i32, 0i32, 0i32);
    for (k, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Punct(b'(') => paren += 1,
            Tok::Punct(b')') => paren -= 1,
            Tok::Punct(b'[') => brack += 1,
            Tok::Punct(b']') => brack -= 1,
            Tok::Punct(b'<') => angle += 1,
            Tok::Punct(b'>') if k == 0 || !tokens[k - 1].is_punct(b'-') => angle -= 1,
            Tok::Punct(b',') if paren == 0 && brack == 0 && angle == 0 => {
                groups.push(Vec::new());
                continue;
            }
            _ => {}
        }
        groups.last_mut().expect("non-empty").push(t.clone());
    }
    let mut params = Vec::new();
    for g in &groups {
        // Skip leading `mut` / `&` / lifetimes.
        let mut k = 0;
        while k < g.len() {
            match &g[k].tok {
                Tok::Punct(b'&') | Tok::Punct(b'\'') => k += 1,
                Tok::Ident(id) if id == "mut" => k += 1,
                Tok::Ident(id) if k > 0 && g[k - 1].is_punct(b'\'') => {
                    let _ = id;
                    k += 1;
                }
                _ => break,
            }
        }
        if g.get(k).and_then(|t| t.ident()) == Some("self") {
            continue;
        }
        if k + 1 < g.len() && g[k + 1].is_punct(b':') {
            if let Some(name) = g[k].ident() {
                params.push((name.to_string(), principal_type(&g[k + 2..])));
            }
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("test.rs".into(), src.into())
    }

    #[test]
    fn finds_free_fn_with_params() {
        let f = parse("pub fn handle(shared: &Arc<Shared>, stream: TcpStream) -> u64 { 1 }");
        assert_eq!(f.fns.len(), 1);
        let fun = &f.fns[0];
        assert_eq!(fun.name, "handle");
        assert_eq!(fun.self_ty, None);
        assert_eq!(
            fun.params,
            vec![
                ("shared".to_string(), "Shared".to_string()),
                ("stream".to_string(), "TcpStream".to_string())
            ]
        );
        assert!(!fun.is_test);
    }

    #[test]
    fn finds_methods_with_impl_type() {
        let f = parse(
            "struct Sched { q: Vec<u64> }\n\
             impl Sched {\n  pub fn push(&mut self, x: u64) { self.q.push(x) }\n}\n\
             impl std::fmt::Display for Sched {\n  fn fmt(&self, w: &mut Formatter) -> Result { Ok(()) }\n}",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "push");
        assert_eq!(f.fns[0].self_ty.as_deref(), Some("Sched"));
        assert_eq!(f.fns[0].params, vec![("x".to_string(), "u64".to_string())]);
        assert_eq!(f.fns[1].name, "fmt");
        assert_eq!(f.fns[1].self_ty.as_deref(), Some("Sched"));
    }

    #[test]
    fn struct_fields_resolve_principal_types() {
        let f = parse(
            "pub struct Shared {\n\
               pub config: ServiceConfig,\n\
               pub jobs: Mutex<HashMap<String, JobEntry>>,\n\
               pub sched: Scheduler,\n\
               pub pool: Arc<WorkerPool>,\n\
             }",
        );
        let s = &f.structs[0];
        assert_eq!(s.name, "Shared");
        let get = |n: &str| {
            s.fields
                .iter()
                .find(|(f, _)| f == n)
                .map(|(_, t)| t.as_str())
        };
        assert_eq!(get("config"), Some("ServiceConfig"));
        assert_eq!(get("jobs"), Some("Mutex"));
        assert_eq!(get("sched"), Some("Scheduler"));
        assert_eq!(get("pool"), Some("WorkerPool"));
    }

    #[test]
    fn enum_variants_parse_with_payloads() {
        let f = parse(
            "pub enum Response {\n\
               Welcome { version: u32 },\n\
               #[allow(dead_code)]\n\
               Pong,\n\
               Result(String, Vec<u8>),\n\
             }",
        );
        let e = &f.enums[0];
        assert_eq!(e.name, "Response");
        assert_eq!(e.variants, vec!["Welcome", "Pong", "Result"]);
    }

    #[test]
    fn cfg_test_mod_and_test_attr_are_marked() {
        let f = parse(
            "fn live() { x.unwrap(); }\n\
             #[test]\nfn t1() { y.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn t2() {}\n}",
        );
        let by_name = |n: &str| f.fns.iter().find(|x| x.name == n).unwrap();
        assert!(!by_name("live").is_test);
        assert!(by_name("t1").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("t2").is_test);
        let unwrap_off = f.raw.find(".unwrap").unwrap();
        assert!(!f.in_test_code(unwrap_off));
        let t1_unwrap = f.raw.rfind("y.unwrap").unwrap();
        assert!(f.in_test_code(t1_unwrap));
    }

    #[test]
    fn trait_method_decls_without_bodies_are_skipped() {
        let f = parse("trait LockExt {\n  fn lock_recover(&self) -> u32;\n}\nfn after() {}");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "after");
    }

    #[test]
    fn generic_fn_and_return_impl_do_not_confuse_parser() {
        let f = parse(
            "fn spawn<F: FnOnce() -> u64>(f: F) -> impl Iterator<Item = u64> {\n\
               std::iter::once(f())\n}",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "spawn");
    }
}
