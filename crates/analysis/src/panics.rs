//! Panic-path lint: forbid `unwrap()` / `expect()` / panicking macros /
//! slice indexing in non-test code of the configured scan set, governed
//! by `analysis/panic_waivers.toml`. Every waiver carries a
//! justification and an exact expected count, so the file is a
//! burn-down list: removing a panic site without removing its waiver
//! fails the lint just like adding one without a waiver.

use std::path::Path;

use crate::config;
use crate::model::{tokenize, SourceFile, Tok};
use crate::report::{Finding, Pass};

pub const WAIVERS_PATH: &str = "analysis/panic_waivers.toml";

/// Waiver-file entries over the default budget fail the lint; the
/// burn-down list must shrink, not grow.
pub const DEFAULT_BUDGET: usize = 40;

#[derive(Clone, Debug)]
pub struct Waiver {
    pub file: String,
    /// Substring matched against the raw text of the finding's line.
    pub contains: String,
    /// Exact number of sites this waiver is expected to match.
    pub count: usize,
    pub justification: String,
}

#[derive(Clone, Debug)]
pub struct PanicWaivers {
    pub scan: Vec<String>,
    pub budget: usize,
    pub waivers: Vec<Waiver>,
}

impl PanicWaivers {
    pub fn load(root: &Path) -> Result<PanicWaivers, String> {
        let path = root.join(WAIVERS_PATH);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = config::parse(&text).map_err(|e| format!("{WAIVERS_PATH}: {e}"))?;
        let mut waivers = Vec::new();
        for entry in doc.array("waiver") {
            waivers.push(Waiver {
                file: entry
                    .get_str("file")
                    .ok_or_else(|| format!("{WAIVERS_PATH}: [[waiver]] missing `file`"))?
                    .to_string(),
                contains: entry
                    .get_str("contains")
                    .ok_or_else(|| format!("{WAIVERS_PATH}: [[waiver]] missing `contains`"))?
                    .to_string(),
                count: entry.get_int("count").unwrap_or(1).max(0) as usize,
                justification: entry.get_str("justification").unwrap_or("").to_string(),
            });
        }
        Ok(PanicWaivers {
            scan: doc
                .root
                .get_list("scan")
                .map(|l| l.to_vec())
                .unwrap_or_default(),
            budget: doc
                .root
                .get_int("budget")
                .map(|b| b.max(0) as usize)
                .unwrap_or(DEFAULT_BUDGET),
            waivers,
        })
    }
}

/// A detected panic-capable site.
#[derive(Clone, Debug)]
struct PanicSite {
    file: String,
    line: usize,
    what: String,
}

/// Run the panic-path pass over the parsed scan set.
pub fn run(waivers: &PanicWaivers, files: &[SourceFile]) -> Vec<Finding> {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

    let mut sites: Vec<PanicSite> = Vec::new();
    for file in files {
        let tokens = tokenize(&file.scrubbed);
        for (i, t) in tokens.iter().enumerate() {
            if file.in_test_code(t.off) {
                continue;
            }
            let next_is = |k: usize, b: u8| tokens.get(i + k).is_some_and(|t| t.is_punct(b));
            match &t.tok {
                Tok::Ident(id)
                    if (id == "unwrap" || id == "expect")
                        && i > 0
                        && tokens[i - 1].is_punct(b'.')
                        && next_is(1, b'(') =>
                {
                    sites.push(PanicSite {
                        file: file.path.clone(),
                        line: file.line_of(t.off),
                        what: format!(".{id}()"),
                    });
                }
                Tok::Ident(id) if PANIC_MACROS.contains(&id.as_str()) && next_is(1, b'!') => {
                    sites.push(PanicSite {
                        file: file.path.clone(),
                        line: file.line_of(t.off),
                        what: format!("{id}!"),
                    });
                }
                Tok::Punct(b'[') if i > 0 => {
                    // Indexing: `expr[`. The previous token is an ident,
                    // `)` or `]`; attributes (`#[`), macros (`vec![`),
                    // literals (`= [`) and type positions all fail this.
                    let indexing = match &tokens[i - 1].tok {
                        Tok::Ident(id) => !matches!(
                            id.as_str(),
                            // Type/keyword positions that precede array
                            // types rather than index expressions.
                            "mut" | "dyn" | "in" | "as" | "return" | "box" | "else"
                        ),
                        Tok::Punct(b')') | Tok::Punct(b']') => true,
                        _ => false,
                    };
                    if indexing {
                        sites.push(PanicSite {
                            file: file.path.clone(),
                            line: file.line_of(t.off),
                            what: "slice index".to_string(),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    let mut findings = Vec::new();

    if waivers.waivers.len() > waivers.budget {
        findings.push(Finding::new(
            Pass::Panics,
            WAIVERS_PATH,
            0,
            format!(
                "waiver budget exceeded: {} entries, budget {} — burn sites down, don't add more",
                waivers.waivers.len(),
                waivers.budget
            ),
        ));
    }

    let mut match_counts = vec![0usize; waivers.waivers.len()];
    'site: for site in &sites {
        let file = files
            .iter()
            .find(|f| f.path == site.file)
            .expect("site from files");
        let line_text = file.line_text(site.line);
        for (w_idx, w) in waivers.waivers.iter().enumerate() {
            if w.file == site.file && line_text.contains(&w.contains) {
                match_counts[w_idx] += 1;
                continue 'site;
            }
        }
        findings.push(Finding::new(
            Pass::Panics,
            site.file.clone(),
            site.line,
            format!(
                "{} in non-test code without a waiver (add the fix, or a justified \
                 entry in {WAIVERS_PATH})",
                site.what
            ),
        ));
    }

    for (w, matched) in waivers.waivers.iter().zip(&match_counts) {
        if w.justification.trim().is_empty() {
            findings.push(Finding::new(
                Pass::Panics,
                WAIVERS_PATH,
                0,
                format!(
                    "waiver for {} (`{}`) has no justification",
                    w.file, w.contains
                ),
            ));
        }
        if *matched == 0 {
            findings.push(Finding::new(
                Pass::Panics,
                WAIVERS_PATH,
                0,
                format!(
                    "stale waiver: {} (`{}`) matched no panic site — delete it",
                    w.file, w.contains
                ),
            ));
        } else if *matched != w.count {
            findings.push(Finding::new(
                Pass::Panics,
                WAIVERS_PATH,
                0,
                format!(
                    "waiver for {} (`{}`) expects {} site(s) but matched {} — update `count`",
                    w.file, w.contains, w.count, matched
                ),
            ));
        }
    }

    findings.sort_by(|x, y| (&x.file, x.line, &x.message).cmp(&(&y.file, y.line, &y.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn waivers(entries: Vec<Waiver>) -> PanicWaivers {
        PanicWaivers {
            scan: vec![],
            budget: DEFAULT_BUDGET,
            waivers: entries,
        }
    }

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("x.rs".into(), src.into())
    }

    #[test]
    fn unwaived_unwrap_and_expect_are_flagged() {
        let f = parse("fn f() { a.unwrap(); b.expect(\"m\"); c.unwrap_or(0); }");
        let findings = run(&waivers(vec![]), &[f]);
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert!(findings.iter().any(|f| f.message.contains(".unwrap()")));
        assert!(findings.iter().any(|f| f.message.contains(".expect()")));
    }

    #[test]
    fn panic_macros_are_flagged_but_not_in_tests() {
        let f = parse(
            "fn f() { panic!(\"boom\"); }\n\
             #[cfg(test)]\nmod tests { fn t() { panic!(\"ok in tests\"); unreachable!() } }",
        );
        let findings = run(&waivers(vec![]), &[f]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn slice_index_heuristic() {
        let f = parse(
            "fn f(v: &[u8], m: &Map) -> u8 {\n\
               let a = v[0];\n\
               let b = &m.items[key];\n\
               let c: [u8; 4] = [0; 4];\n\
               let d = vec![1, 2];\n\
               a\n\
             }\n\
             #[derive(Clone)]\nstruct S { x: u8 }",
        );
        let findings = run(&waivers(vec![]), &[f]);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3], "{findings:#?}");
    }

    #[test]
    fn waived_site_passes_and_counts_are_exact() {
        let f = parse("fn f() { x.expect(\"serialize infallibly\"); }");
        let ok = run(
            &waivers(vec![Waiver {
                file: "x.rs".into(),
                contains: "serialize infallibly".into(),
                count: 1,
                justification: "writer is a Vec, cannot fail".into(),
            }]),
            &[f],
        );
        assert!(ok.is_empty(), "{ok:#?}");

        let f = parse("fn f() { x.expect(\"serialize infallibly\"); }");
        let wrong_count = run(
            &waivers(vec![Waiver {
                file: "x.rs".into(),
                contains: "serialize infallibly".into(),
                count: 2,
                justification: "ok".into(),
            }]),
            &[f],
        );
        assert!(
            wrong_count
                .iter()
                .any(|f| f.message.contains("update `count`")),
            "{wrong_count:#?}"
        );
    }

    #[test]
    fn unjustified_and_stale_waivers_fail() {
        let f = parse("fn f() { x.unwrap(); }");
        let findings = run(
            &waivers(vec![
                Waiver {
                    file: "x.rs".into(),
                    contains: "x.unwrap()".into(),
                    count: 1,
                    justification: "  ".into(),
                },
                Waiver {
                    file: "x.rs".into(),
                    contains: "no such line".into(),
                    count: 1,
                    justification: "fine".into(),
                },
            ]),
            &[f],
        );
        assert!(findings
            .iter()
            .any(|f| f.message.contains("no justification")));
        assert!(findings.iter().any(|f| f.message.contains("stale waiver")));
    }

    #[test]
    fn budget_overflow_fails() {
        let f = parse("fn f() {}");
        let mut entries = Vec::new();
        for i in 0..=DEFAULT_BUDGET {
            entries.push(Waiver {
                file: "x.rs".into(),
                contains: format!("site {i}"),
                count: 1,
                justification: "j".into(),
            });
        }
        let findings = run(&waivers(entries), &[f]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("waiver budget exceeded")),
            "{findings:#?}"
        );
    }
}
