//! seqpoint-lint: offline, dependency-free static analysis over the
//! workspace's own Rust sources. Three passes — lock-order analysis
//! against a committed manifest, a panic-path lint governed by a
//! justified waiver file, and a protocol-drift check against a
//! committed frame digest. See the README "Static analysis" section
//! for the data-file formats, and `analysis/` for the committed
//! records themselves.

pub mod config;
pub mod lockorder;
pub mod model;
pub mod panics;
pub mod protocol;
pub mod report;
pub mod scrub;

use std::path::Path;

use model::SourceFile;
use report::{Finding, Pass};

/// Load and parse every `.rs` file under the given scan entries
/// (repo-relative files or directories). Returns the parsed sources
/// plus any read errors as strings; order is deterministic.
pub fn load_sources(root: &Path, scan: &[String]) -> (Vec<SourceFile>, Vec<String>) {
    let mut paths: Vec<String> = Vec::new();
    let mut errors = Vec::new();
    for entry in scan {
        let abs = root.join(entry);
        if abs.is_dir() {
            collect_rs(&abs, entry, &mut paths, &mut errors);
        } else if abs.is_file() {
            paths.push(entry.clone());
        } else {
            errors.push(format!("scan entry `{entry}` does not exist"));
        }
    }
    paths.sort();
    paths.dedup();
    let mut files = Vec::new();
    for rel in paths {
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(raw) => files.push(SourceFile::parse(rel, raw)),
            Err(e) => errors.push(format!("cannot read `{rel}`: {e}")),
        }
    }
    (files, errors)
}

fn collect_rs(dir: &Path, rel: &str, out: &mut Vec<String>, errors: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("cannot read dir `{rel}`: {e}"));
            return;
        }
    };
    let mut names: Vec<(String, bool)> = entries
        .filter_map(|e| e.ok())
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let is_dir = e.file_type().map(|t| t.is_dir()).unwrap_or(false);
            (name, is_dir)
        })
        .collect();
    names.sort();
    for (name, is_dir) in names {
        if name == "target" || name.starts_with('.') {
            continue;
        }
        let child_rel = format!("{rel}/{name}");
        if is_dir {
            collect_rs(&dir.join(&name), &child_rel, out, errors);
        } else if name.ends_with(".rs") {
            out.push(child_rel);
        }
    }
}

/// Run the selected passes against the repo at `root`. Configuration
/// problems (missing manifest, unreadable scan entries) surface as
/// findings so the tool still exits non-zero instead of silently
/// passing.
pub fn run_passes(root: &Path, passes: &[Pass]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen = Vec::new();
    for &pass in passes {
        if seen.contains(&pass) {
            continue;
        }
        seen.push(pass);
        match pass {
            Pass::LockOrder => match lockorder::LockManifest::load(root) {
                Ok(manifest) => {
                    let (files, errors) = load_sources(root, &manifest.scan);
                    for e in errors {
                        findings.push(Finding::new(pass, lockorder::MANIFEST_PATH, 0, e));
                    }
                    findings.extend(lockorder::run(&manifest, &files));
                }
                Err(e) => findings.push(Finding::new(pass, lockorder::MANIFEST_PATH, 0, e)),
            },
            Pass::Panics => match panics::PanicWaivers::load(root) {
                Ok(waivers) => {
                    let (files, errors) = load_sources(root, &waivers.scan);
                    for e in errors {
                        findings.push(Finding::new(pass, panics::WAIVERS_PATH, 0, e));
                    }
                    findings.extend(panics::run(&waivers, &files));
                }
                Err(e) => findings.push(Finding::new(pass, panics::WAIVERS_PATH, 0, e)),
            },
            Pass::Protocol => match protocol::ProtocolConfig::load(root) {
                Ok(cfg) => findings.extend(protocol::run(root, &cfg)),
                Err(e) => findings.push(Finding::new(pass, protocol::DIGEST_PATH, 0, e)),
            },
        }
    }
    findings
}

/// All passes, in report order.
pub fn all_passes() -> Vec<Pass> {
    vec![Pass::LockOrder, Pass::Panics, Pass::Protocol]
}
