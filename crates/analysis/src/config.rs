//! Minimal TOML-subset reader for the committed analysis data files
//! (`analysis/lock_order.toml`, `analysis/panic_waivers.toml`,
//! `analysis/protocol_digest.toml`). Supported grammar, which is all
//! those files use: `#` comments, `key = "string" | integer | bool |
//! ["array", "of", "strings"]` (arrays may span lines), `[section]`
//! headers, and `[[array-of-tables]]` headers. Hand-rolled because the
//! analyzer is dependency-free by design — see vendor/README.md.

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<String>),
}

#[derive(Clone, Debug, Default)]
pub struct Table {
    pub entries: Vec<(String, Value)>,
}

impl Table {
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    pub fn get_int(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(Value::Int(i)) => Some(*i),
            _ => None,
        }
    }

    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    pub fn get_list(&self, key: &str) -> Option<&[String]> {
        match self.get(key) {
            Some(Value::List(l)) => Some(l),
            _ => None,
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct TomlDoc {
    /// Top-level keys before any header.
    pub root: Table,
    /// `[name]` sections, in file order.
    pub sections: Vec<(String, Table)>,
    /// `[[name]]` array-of-tables entries, in file order.
    pub arrays: Vec<(String, Table)>,
}

impl TomlDoc {
    pub fn section(&self, name: &str) -> Option<&Table> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    pub fn array<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Table> + 'a {
        self.arrays
            .iter()
            .filter(move |(n, _)| n == name)
            .map(|(_, t)| t)
    }
}

/// Parse a TOML-subset document. Errors carry a 1-based line number.
pub fn parse(text: &str) -> Result<TomlDoc, String> {
    let mut doc = TomlDoc::default();
    // Which table new keys land in: root until a header appears.
    enum Target {
        Root,
        Section,
        Array,
    }
    let mut target = Target::Root;

    let lines: Vec<&str> = text.lines().collect();
    let mut ln = 0usize;
    while ln < lines.len() {
        let lineno = ln + 1;
        let line = strip_comment(lines[ln]).trim().to_string();
        ln += 1;
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            doc.arrays.push((name.trim().to_string(), Table::default()));
            target = Target::Array;
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            doc.sections
                .push((name.trim().to_string(), Table::default()));
            target = Target::Section;
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = line[..eq].trim().to_string();
        let mut rhs = line[eq + 1..].trim().to_string();
        // Multi-line array: keep consuming lines until brackets close
        // outside of string literals.
        while rhs.starts_with('[') && !bracket_closed(&rhs) {
            if ln >= lines.len() {
                return Err(format!("line {lineno}: unterminated array for `{key}`"));
            }
            rhs.push(' ');
            rhs.push_str(strip_comment(lines[ln]).trim());
            ln += 1;
        }
        let value = parse_value(&rhs).map_err(|e| format!("line {lineno}: {e}"))?;
        let table = match target {
            Target::Root => &mut doc.root,
            Target::Section => &mut doc.sections.last_mut().expect("section pushed").1,
            Target::Array => &mut doc.arrays.last_mut().expect("array pushed").1,
        };
        table.entries.push((key, value));
    }
    Ok(doc)
}

/// Drop a trailing `#` comment, respecting `"…"` string contents.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Whether a `[...]` array literal has a matching close bracket outside
/// any string.
fn bracket_closed(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut in_str = false;
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    false
}

fn parse_value(rhs: &str) -> Result<Value, String> {
    let rhs = rhs.trim();
    if let Some(inner) = rhs.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for part in split_array(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                other => return Err(format!("only string arrays are supported, got {other:?}")),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(inner) = rhs.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        return Ok(Value::Str(unescape(inner)));
    }
    match rhs {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    rhs.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value `{rhs}`"))
}

/// Split array items on commas outside strings.
fn split_array(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_str => {
                cur.push(c);
                if let Some(n) = chars.next() {
                    cur.push(n);
                }
            }
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Escape a string for emission into a TOML-subset file (used by
/// `--bless-protocol`).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_root_sections_and_arrays_of_tables() {
        let doc = parse(
            "# header comment\n\
             version = 3\n\
             digest = \"fnv:abc\"\n\
             strict = true\n\
             \n\
             [protocol]\n\
             source = \"crates/core/src/protocol.rs\"\n\
             \n\
             [[waiver]]\n\
             file = \"a.rs\"\n\
             count = 2\n\
             [[waiver]]\n\
             file = \"b.rs\" # trailing comment\n",
        )
        .unwrap();
        assert_eq!(doc.root.get_int("version"), Some(3));
        assert_eq!(doc.root.get_str("digest"), Some("fnv:abc"));
        assert_eq!(doc.root.get_bool("strict"), Some(true));
        assert_eq!(
            doc.section("protocol").unwrap().get_str("source"),
            Some("crates/core/src/protocol.rs")
        );
        let waivers: Vec<&Table> = doc.array("waiver").collect();
        assert_eq!(waivers.len(), 2);
        assert_eq!(waivers[0].get_str("file"), Some("a.rs"));
        assert_eq!(waivers[0].get_int("count"), Some(2));
        assert_eq!(waivers[1].get_str("file"), Some("b.rs"));
    }

    #[test]
    fn multiline_string_arrays() {
        let doc = parse(
            "order = [\n\
               \"jobs\",   # outermost\n\
               \"sched\",\n\
               \"cache\",\n\
             ]\n",
        )
        .unwrap();
        assert_eq!(
            doc.root.get_list("order").unwrap(),
            &["jobs".to_string(), "sched".to_string(), "cache".to_string()]
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("contains = \"#[attr] index\"\n").unwrap();
        assert_eq!(doc.root.get_str("contains"), Some("#[attr] index"));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "say \"hi\"\\path";
        let doc = parse(&format!("k = \"{}\"\n", escape(original))).unwrap();
        assert_eq!(doc.root.get_str("k"), Some(original));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ok = 1\nbroken line\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
