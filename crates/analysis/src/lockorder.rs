//! Lock-order analysis. Extracts `.lock()` / condvar-wait acquisition
//! sites per function, simulates guard scopes inside each function
//! body (let-bindings, `drop()`, guard moves through condvar waits,
//! statement temporaries), resolves intra-crate call edges through
//! typed receiver chains, and propagates may-acquire sets to a fixed
//! point. Every observed acquisition edge is checked against the
//! committed partial order in `analysis/lock_order.toml`; violations,
//! cycles, double-acquires, unmanifested lock sites, and stale manifest
//! entries are all findings.
//!
//! The simulation is deliberately conservative-but-honest about its
//! heuristics: statement temporaries are assumed released at `;` and at
//! top-level `,`, and unresolvable calls (trait objects, std methods)
//! are ignored rather than guessed.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;

use crate::config;
use crate::model::{tokenize, FnItem, SourceFile, Tok, Token};
use crate::report::{ChainLink, Finding, Pass};

pub const MANIFEST_PATH: &str = "analysis/lock_order.toml";

#[derive(Clone, Debug)]
pub struct LockClass {
    pub name: String,
    /// Files (repo-relative) in which this lock's receivers live.
    pub files: Vec<String>,
    /// Last path segment of the receiver at acquisition sites
    /// (`shared.jobs.lock()` → `jobs`, `self.inner.lock()` → `inner`).
    pub receivers: Vec<String>,
    /// Condvar receiver names whose `wait*` calls release + reacquire
    /// this lock.
    pub cvs: Vec<String>,
}

#[derive(Clone, Debug)]
pub struct LockManifest {
    pub scan: Vec<String>,
    pub order: Vec<String>,
    pub ignore_receivers: Vec<String>,
    pub lock_methods: Vec<String>,
    pub wait_methods: Vec<String>,
    pub classes: Vec<LockClass>,
}

impl LockManifest {
    pub fn load(root: &Path) -> Result<LockManifest, String> {
        let path = root.join(MANIFEST_PATH);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = config::parse(&text).map_err(|e| format!("{MANIFEST_PATH}: {e}"))?;
        let list = |t: &config::Table, k: &str| -> Vec<String> {
            t.get_list(k).map(|l| l.to_vec()).unwrap_or_default()
        };
        let mut classes = Vec::new();
        for entry in doc.array("lock") {
            classes.push(LockClass {
                name: entry
                    .get_str("name")
                    .ok_or_else(|| format!("{MANIFEST_PATH}: [[lock]] entry missing `name`"))?
                    .to_string(),
                files: list(entry, "files"),
                receivers: list(entry, "receivers"),
                cvs: list(entry, "cvs"),
            });
        }
        let mut lock_methods = list(&doc.root, "lock_methods");
        if lock_methods.is_empty() {
            lock_methods = vec!["lock".into(), "lock_recover".into()];
        }
        let mut wait_methods = list(&doc.root, "wait_methods");
        if wait_methods.is_empty() {
            wait_methods = vec![
                "wait".into(),
                "wait_timeout".into(),
                "wait_while".into(),
                "wait_timeout_recover".into(),
            ];
        }
        Ok(LockManifest {
            scan: list(&doc.root, "scan"),
            order: list(&doc.root, "order"),
            ignore_receivers: list(&doc.root, "ignore_receivers"),
            lock_methods,
            wait_methods,
            classes,
        })
    }
}

/// A lock acquisition site: file + 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Site {
    file: String,
    line: usize,
}

impl Site {
    fn link(&self, note: String) -> ChainLink {
        ChainLink {
            file: self.file.clone(),
            line: self.line,
            note,
        }
    }
}

/// A held guard during simulation.
#[derive(Clone, Debug)]
struct Guard {
    class: usize,
    var: Option<String>,
    depth: usize,
    site: Site,
}

/// A resolved intra-crate call made while holding locks.
#[derive(Clone, Debug)]
struct CallSite {
    callee: usize,
    site: Site,
    callee_name: String,
    held: Vec<(usize, Site)>,
}

#[derive(Default)]
struct FnSummary {
    /// Direct acquisitions: (class, site).
    direct: Vec<(usize, Site)>,
    calls: Vec<CallSite>,
}

/// Run the lock-order pass. `files` must be the parsed sources of the
/// manifest's `scan` set.
pub fn run(manifest: &LockManifest, files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Global maps: functions, methods, structs.
    let mut fns: Vec<(usize, &FnItem)> = Vec::new();
    let mut method_map: HashMap<(String, String), usize> = HashMap::new();
    let mut free_map: HashMap<String, Vec<usize>> = HashMap::new();
    let mut struct_map: HashMap<&str, &crate::model::StructItem> = HashMap::new();
    let mut field_counts: HashMap<&str, Vec<&str>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let idx = fns.len();
            fns.push((fi, f));
            match &f.self_ty {
                Some(ty) => {
                    method_map
                        .entry((ty.clone(), f.name.clone()))
                        .or_insert(idx);
                }
                None => free_map.entry(f.name.clone()).or_default().push(idx),
            }
        }
        for s in &file.structs {
            struct_map.entry(s.name.as_str()).or_insert(s);
            for (fname, fty) in &s.fields {
                field_counts.entry(fname.as_str()).or_default().push(fty);
            }
        }
    }

    // Simulate each function.
    let resolver = Resolver {
        method_map: &method_map,
        free_map: &free_map,
        struct_map: &struct_map,
        field_counts: &field_counts,
    };
    let mut summaries: Vec<FnSummary> = Vec::new();
    let mut class_hit = vec![false; manifest.classes.len()];
    // Deduped edge witnesses: (from, to) → chain.
    let mut edges: BTreeMap<(usize, usize), Vec<ChainLink>> = BTreeMap::new();
    for &(fi, item) in &fns {
        let file = &files[fi];
        let mut sim = Simulator::new(manifest, file, item, &resolver, &fns);
        sim.run();
        for &(c, _) in &sim.summary.direct {
            class_hit[c] = true;
        }
        for (key, chain) in sim.edges {
            edges.entry(key).or_insert(chain);
        }
        findings.extend(sim.findings);
        summaries.push(sim.summary);
    }

    // Fixed-point: transitive may-acquire sets with witness paths.
    let mut reach: Vec<BTreeMap<usize, Vec<ChainLink>>> = summaries
        .iter()
        .map(|s| {
            s.direct
                .iter()
                .map(|(c, site)| {
                    (
                        *c,
                        vec![site.link(format!("acquires '{}'", manifest.classes[*c].name))],
                    )
                })
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for (idx, s) in summaries.iter().enumerate() {
            for call in &s.calls {
                let callee_reach: Vec<(usize, Vec<ChainLink>)> = reach[call.callee]
                    .iter()
                    .map(|(c, chain)| (*c, chain.clone()))
                    .collect();
                for (c, chain) in callee_reach {
                    if let std::collections::btree_map::Entry::Vacant(slot) = reach[idx].entry(c) {
                        let mut path = vec![call.site.link(format!("calls {}", call.callee_name))];
                        path.extend(chain.into_iter().take(5));
                        slot.insert(path);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Interprocedural edges: held at a call site × everything the
    // callee may transitively acquire.
    for s in &summaries {
        for call in &s.calls {
            for &(held_class, ref held_site) in &call.held {
                for (acq_class, path) in &reach[call.callee] {
                    let key = (held_class, *acq_class);
                    if edges.contains_key(&key) {
                        continue;
                    }
                    let mut chain =
                        vec![held_site
                            .link(format!("acquires '{}'", manifest.classes[held_class].name))];
                    chain.push(call.site.link(format!(
                        "calls {} while holding '{}'",
                        call.callee_name, manifest.classes[held_class].name
                    )));
                    chain.extend(path.iter().take(5).cloned());
                    edges.insert(key, chain);
                }
            }
        }
    }

    // Check edges against the manifest order.
    let order_idx: HashMap<&str, usize> = manifest
        .order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    for name in &manifest.order {
        if !manifest.classes.iter().any(|c| &c.name == name) {
            findings.push(Finding::new(
                Pass::LockOrder,
                MANIFEST_PATH,
                0,
                format!("order entry '{name}' names no [[lock]] class"),
            ));
        }
    }
    for (&(a, b), chain) in &edges {
        let (an, bn) = (&manifest.classes[a].name, &manifest.classes[b].name);
        if a == b {
            findings.push(
                Finding::new(
                    Pass::LockOrder,
                    chain.last().map(|l| l.file.clone()).unwrap_or_default(),
                    chain.last().map(|l| l.line).unwrap_or(0),
                    format!("lock '{an}' acquired while already held (self-deadlock)"),
                )
                .with_chain(chain.clone()),
            );
            continue;
        }
        match (order_idx.get(an.as_str()), order_idx.get(bn.as_str())) {
            (Some(&ia), Some(&ib)) if ia > ib => {
                findings.push(
                    Finding::new(
                        Pass::LockOrder,
                        chain.last().map(|l| l.file.clone()).unwrap_or_default(),
                        chain.last().map(|l| l.line).unwrap_or(0),
                        format!(
                            "lock '{bn}' acquired while holding '{an}', but the manifest \
                             orders '{bn}' before '{an}'"
                        ),
                    )
                    .with_chain(chain.clone()),
                );
            }
            (Some(_), Some(_)) => {}
            _ => {
                let missing = if order_idx.contains_key(an.as_str()) {
                    bn
                } else {
                    an
                };
                findings.push(
                    Finding::new(
                        Pass::LockOrder,
                        MANIFEST_PATH,
                        0,
                        format!(
                            "acquisition edge '{an}' -> '{bn}' involves lock '{missing}' \
                             which is missing from the manifest `order` list"
                        ),
                    )
                    .with_chain(chain.clone()),
                );
            }
        }
    }

    // Cycle detection over the edge graph (independent of the declared
    // order, so a manifest that legalises a cycle still fails).
    findings.extend(find_cycles(manifest, &edges));

    // Stale manifest entries.
    for (c, hit) in class_hit.iter().enumerate() {
        if !hit {
            findings.push(Finding::new(
                Pass::LockOrder,
                MANIFEST_PATH,
                0,
                format!(
                    "[[lock]] '{}' matched no acquisition site (stale manifest entry)",
                    manifest.classes[c].name
                ),
            ));
        }
    }

    findings.sort_by(|x, y| (&x.file, x.line, &x.message).cmp(&(&y.file, y.line, &y.message)));
    findings
}

fn find_cycles(
    manifest: &LockManifest,
    edges: &BTreeMap<(usize, usize), Vec<ChainLink>>,
) -> Vec<Finding> {
    let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(a, b) in edges.keys() {
        if a != b {
            adj.entry(a).or_default().push(b);
        }
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
    // DFS from every node; report each distinct cycle node-set once.
    for &start in adj.keys() {
        let mut path: Vec<usize> = Vec::new();
        fn dfs(
            node: usize,
            start: usize,
            adj: &BTreeMap<usize, Vec<usize>>,
            path: &mut Vec<usize>,
            found: &mut Vec<Vec<usize>>,
        ) {
            path.push(node);
            if let Some(nexts) = adj.get(&node) {
                for &n in nexts {
                    if n == start {
                        found.push(path.clone());
                    } else if !path.contains(&n) {
                        dfs(n, start, adj, path, found);
                    }
                }
            }
            path.pop();
        }
        let mut found = Vec::new();
        dfs(start, start, &adj, &mut path, &mut found);
        for cycle in found {
            let set: BTreeSet<usize> = cycle.iter().copied().collect();
            if !reported.insert(set) {
                continue;
            }
            let names: Vec<&str> = cycle
                .iter()
                .chain(std::iter::once(&cycle[0]))
                .map(|&c| manifest.classes[c].name.as_str())
                .collect();
            let mut chain = Vec::new();
            for w in cycle.windows(2) {
                if let Some(c) = edges.get(&(w[0], w[1])) {
                    chain.extend(c.iter().cloned());
                }
            }
            if let Some(c) = edges.get(&(cycle[cycle.len() - 1], cycle[0])) {
                chain.extend(c.iter().cloned());
            }
            let anchor = chain.first().cloned().unwrap_or(ChainLink {
                file: MANIFEST_PATH.into(),
                line: 0,
                note: String::new(),
            });
            findings.push(
                Finding::new(
                    Pass::LockOrder,
                    anchor.file,
                    anchor.line,
                    format!("lock-order cycle: {}", names.join(" -> ")),
                )
                .with_chain(chain),
            );
        }
    }
    findings
}

struct Resolver<'a> {
    method_map: &'a HashMap<(String, String), usize>,
    free_map: &'a HashMap<String, Vec<usize>>,
    struct_map: &'a HashMap<&'a str, &'a crate::model::StructItem>,
    field_counts: &'a HashMap<&'a str, Vec<&'a str>>,
}

impl<'a> Resolver<'a> {
    fn field_ty(&self, ty: &str, field: &str) -> Option<String> {
        self.struct_map
            .get(ty)?
            .fields
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, t)| t.clone())
    }

    /// Resolve a call to a function index. `chain` is the receiver path
    /// (`shared.sched.push(..)` → ["shared", "sched"], method "push");
    /// empty chain = free call; `path_call` marks `Type::method(..)`.
    fn resolve(
        &self,
        chain: &[String],
        method: &str,
        path_call: bool,
        current: &FnItem,
    ) -> Option<usize> {
        if path_call {
            let ty = chain.last()?;
            return self
                .method_map
                .get(&(ty.clone(), method.to_string()))
                .copied();
        }
        if chain.is_empty() {
            let cands = self.free_map.get(method)?;
            return if cands.len() == 1 {
                Some(cands[0])
            } else {
                None
            };
        }
        let mut ty: Option<String> = None;
        let mut rest: &[String] = &[];
        if chain[0] == "self" {
            ty = current.self_ty.clone();
            rest = &chain[1..];
        } else if let Some((_, pty)) = current.params.iter().find(|(n, _)| n == &chain[0]) {
            ty = Some(pty.clone());
            rest = &chain[1..];
        } else {
            // Unique-field fallback: if some segment of the chain is a
            // field name that occurs in exactly one struct, pick up the
            // walk from there.
            for (k, seg) in chain.iter().enumerate() {
                if let Some(types) = self.field_counts.get(seg.as_str()) {
                    let uniq: BTreeSet<&&str> = types.iter().collect();
                    if uniq.len() == 1 {
                        ty = Some(types[0].to_string());
                        rest = &chain[k + 1..];
                        break;
                    }
                }
            }
        }
        let mut ty = ty?;
        for seg in rest {
            ty = self.field_ty(&ty, seg)?;
        }
        self.method_map.get(&(ty, method.to_string())).copied()
    }
}

struct Simulator<'a> {
    manifest: &'a LockManifest,
    file: &'a SourceFile,
    item: &'a FnItem,
    resolver: &'a Resolver<'a>,
    fns: &'a [(usize, &'a FnItem)],
    tokens: Vec<Token>,
    held: Vec<Guard>,
    depth: usize,
    paren: i32,
    pending_bind: Option<String>,
    bind_used: bool,
    rhs_count: usize,
    rhs_ident: Option<String>,
    stmt_start: bool,
    summary: FnSummary,
    edges: BTreeMap<(usize, usize), Vec<ChainLink>>,
    findings: Vec<Finding>,
}

impl<'a> Simulator<'a> {
    fn new(
        manifest: &'a LockManifest,
        file: &'a SourceFile,
        item: &'a FnItem,
        resolver: &'a Resolver<'a>,
        fns: &'a [(usize, &'a FnItem)],
    ) -> Simulator<'a> {
        // Body tokens, minus the bodies of nested fn items (they are
        // analysed as their own functions).
        let nested: Vec<(usize, usize)> = file
            .fns
            .iter()
            .filter(|f| f.body.0 > item.body.0 && f.body.1 <= item.body.1)
            .map(|f| f.body)
            .collect();
        let all = tokenize(&file.scrubbed);
        let tokens: Vec<Token> = all
            .into_iter()
            .filter(|t| {
                t.off >= item.body.0
                    && t.off < item.body.1
                    && !nested.iter().any(|&(s, e)| t.off >= s && t.off < e)
            })
            .collect();
        Simulator {
            manifest,
            file,
            item,
            resolver,
            fns,
            tokens,
            held: Vec::new(),
            depth: 0,
            paren: 0,
            pending_bind: None,
            bind_used: false,
            rhs_count: 0,
            rhs_ident: None,
            stmt_start: true,
            summary: FnSummary::default(),
            edges: BTreeMap::new(),
            findings: Vec::new(),
        }
    }

    fn site(&self, off: usize) -> Site {
        Site {
            file: self.file.path.clone(),
            line: self.file.line_of(off),
        }
    }

    /// Lock class for an acquisition receiver, by (file, last segment).
    fn class_for(&self, recv: &str) -> Option<usize> {
        self.manifest.classes.iter().position(|c| {
            c.receivers.iter().any(|r| r == recv) && c.files.iter().any(|f| f == &self.file.path)
        })
    }

    /// Lock class whose condvar list contains `recv`.
    fn class_for_cv(&self, recv: &str) -> Option<usize> {
        self.manifest.classes.iter().position(|c| {
            c.cvs.iter().any(|r| r == recv) && c.files.iter().any(|f| f == &self.file.path)
        })
    }

    fn release_var(&mut self, var: &str) {
        self.held.retain(|g| g.var.as_deref() != Some(var));
    }

    fn release_temps(&mut self) {
        self.held.retain(|g| g.var.is_some());
    }

    fn end_statement(&mut self) {
        // `x = y;` guard transfer: single-ident RHS naming a held guard.
        if let Some(bind) = self.pending_bind.take() {
            if !self.bind_used && self.rhs_count == 1 {
                if let Some(r) = self.rhs_ident.take() {
                    for g in &mut self.held {
                        if g.var.as_deref() == Some(r.as_str()) {
                            g.var = Some(bind.clone());
                        }
                    }
                }
            }
        }
        self.bind_used = false;
        self.rhs_count = 0;
        self.rhs_ident = None;
        self.release_temps();
        self.stmt_start = true;
        self.paren = 0;
    }

    /// Index just past the `)` matching the `(` at `open_idx`.
    fn skip_parens(&self, open_idx: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open_idx;
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Punct(b'(') => depth += 1,
                Tok::Punct(b')') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Whether the guard produced by the lock/wait call at `i` (whose
    /// args open at `i + 1`) escapes into the enclosing binding: true
    /// when the method chain ends after optional `.unwrap()` /
    /// `.expect(..)` adapters; false when the chain continues
    /// (`.clone()`, `.len()`, …), in which case the guard is a
    /// statement temporary.
    fn guard_escapes(&self, i: usize) -> bool {
        let mut j = self.skip_parens(i + 1);
        loop {
            if !self.peek(j, b'.') {
                return true;
            }
            match self.tokens.get(j + 1).and_then(|t| t.ident()) {
                Some("unwrap") | Some("expect") if self.peek(j + 2, b'(') => {
                    j = self.skip_parens(j + 2);
                }
                _ => return false,
            }
        }
    }

    fn acquire(&mut self, class: usize, off: usize, binds: bool) {
        let site = self.site(off);
        for g in &self.held {
            let key = (g.class, class);
            if !self.edges.contains_key(&key) {
                let chain = vec![
                    g.site.link(format!(
                        "acquires '{}'",
                        self.manifest.classes[g.class].name
                    )),
                    site.link(format!(
                        "acquires '{}' while holding '{}'",
                        self.manifest.classes[class].name, self.manifest.classes[g.class].name
                    )),
                ];
                self.edges.insert(key, chain);
            }
        }
        self.summary.direct.push((class, site.clone()));
        let var = if binds && self.pending_bind.is_some() && !self.bind_used {
            self.bind_used = true;
            let name = self.pending_bind.clone();
            if let Some(n) = name.clone() {
                // Reassignment: the old guard under this name dies first.
                self.release_var(&n);
            }
            name
        } else {
            None
        };
        self.held.push(Guard {
            class,
            var,
            depth: self.depth,
            site,
        });
    }

    /// Receiver chain ending just before the `.` at `dot_idx`
    /// (`shared.pool.inner` → ["shared", "pool", "inner"]). A call
    /// result in the chain (`stdout()`) contributes its callee name.
    fn receiver_chain(&self, dot_idx: usize) -> Vec<String> {
        let mut chain = Vec::new();
        let mut j = dot_idx; // tokens[j] is the `.`
        loop {
            if j == 0 {
                break;
            }
            let prev = &self.tokens[j - 1];
            match &prev.tok {
                Tok::Ident(id) => {
                    chain.push(id.clone());
                    if j >= 3
                        && self.tokens[j - 2].is_punct(b'.')
                        && self.tokens[j - 3].ident().is_some()
                    {
                        j -= 2;
                        continue;
                    }
                    break;
                }
                Tok::Punct(b')') => {
                    // Walk back over the call's parens to its name.
                    let mut depth = 0i32;
                    let mut k = j - 1;
                    loop {
                        match &self.tokens[k].tok {
                            Tok::Punct(b')') => depth += 1,
                            Tok::Punct(b'(') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if k == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    if k > 0 {
                        if let Some(id) = self.tokens[k - 1].ident() {
                            chain.push(id.to_string());
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
        chain.reverse();
        chain
    }

    /// First ident inside the parens opening at `open_idx`.
    fn first_arg_ident(&self, open_idx: usize) -> Option<String> {
        let mut depth = 0i32;
        for t in &self.tokens[open_idx..] {
            match &t.tok {
                Tok::Punct(b'(') => depth += 1,
                Tok::Punct(b')') => {
                    depth -= 1;
                    if depth == 0 {
                        return None;
                    }
                }
                Tok::Ident(id) if depth == 1 => return Some(id.clone()),
                _ => {}
            }
        }
        None
    }

    fn peek(&self, idx: usize, b: u8) -> bool {
        self.tokens.get(idx).is_some_and(|t| t.is_punct(b))
    }

    fn run(&mut self) {
        const KEYWORDS: &[&str] = &[
            "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "move", "in",
            "as", "break", "continue", "mut", "ref", "use", "pub", "unsafe", "where", "true",
            "false", "Some", "Ok", "Err", "None",
        ];
        let mut i = 0;
        while i < self.tokens.len() {
            let t = self.tokens[i].clone();
            match &t.tok {
                Tok::Punct(b'{') => {
                    self.depth += 1;
                    self.stmt_start = true;
                    i += 1;
                }
                Tok::Punct(b'}') => {
                    self.release_temps();
                    self.depth = self.depth.saturating_sub(1);
                    let d = self.depth;
                    self.held.retain(|g| g.depth <= d);
                    self.stmt_start = true;
                    i += 1;
                }
                Tok::Punct(b';') => {
                    self.end_statement();
                    i += 1;
                }
                Tok::Punct(b'(') => {
                    self.paren += 1;
                    self.bump_rhs(None);
                    i += 1;
                }
                Tok::Punct(b')') => {
                    self.paren -= 1;
                    self.bump_rhs(None);
                    i += 1;
                }
                Tok::Punct(b',') => {
                    if self.paren <= 0 {
                        self.release_temps();
                    }
                    self.bump_rhs(None);
                    i += 1;
                }
                Tok::Ident(id) if id == "let" => {
                    // Collect the binding pattern up to the `=`.
                    let mut j = i + 1;
                    let mut bind: Option<String> = None;
                    let mut after_colon = false;
                    while j < self.tokens.len() {
                        match &self.tokens[j].tok {
                            Tok::Punct(b'=') => {
                                if next_eq_is_cmp(&self.tokens, j) {
                                    j += 2;
                                    continue;
                                }
                                break;
                            }
                            Tok::Punct(b';') | Tok::Punct(b'{') => break,
                            Tok::Punct(b':') => after_colon = true,
                            Tok::Ident(p)
                                if bind.is_none()
                                    && !after_colon
                                    && p != "mut"
                                    && p != "ref"
                                    && p.chars()
                                        .next()
                                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_') =>
                            {
                                bind = Some(p.clone());
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    self.pending_bind = bind;
                    self.bind_used = false;
                    self.rhs_count = 0;
                    self.rhs_ident = None;
                    self.stmt_start = false;
                    i = j + 1; // past the `=` (or terminator)
                }
                Tok::Ident(id) if id == "drop" && self.peek(i + 1, b'(') => {
                    if let Some(var) = self
                        .tokens
                        .get(i + 2)
                        .and_then(|t| t.ident())
                        .map(|s| s.to_string())
                    {
                        if self.peek(i + 3, b')') {
                            self.release_var(&var);
                        }
                    }
                    self.stmt_start = false;
                    i += 1;
                }
                Tok::Ident(id) => {
                    let is_method = i > 0 && self.tokens[i - 1].is_punct(b'.');
                    let is_path = i >= 2
                        && self.tokens[i - 1].is_punct(b':')
                        && self.tokens[i - 2].is_punct(b':');
                    let is_call = self.peek(i + 1, b'(');
                    let is_macro = self.peek(i + 1, b'!');

                    if is_method && is_call && self.manifest.lock_methods.iter().any(|m| m == id) {
                        let chain = self.receiver_chain(i - 1);
                        let recv = chain.last().cloned().unwrap_or_default();
                        if let Some(class) = self.class_for(&recv) {
                            let binds = self.guard_escapes(i);
                            self.acquire(class, t.off, binds);
                        } else if !self.manifest.ignore_receivers.iter().any(|r| r == &recv) {
                            let line = self.file.line_of(t.off);
                            self.findings.push(Finding::new(
                                Pass::LockOrder,
                                self.file.path.clone(),
                                line,
                                format!(
                                    ".{id}() on receiver '{recv}' matches no [[lock]] entry \
                                     in {MANIFEST_PATH}"
                                ),
                            ));
                        }
                        self.stmt_start = false;
                        i += 1;
                        continue;
                    }
                    if is_method && is_call && self.manifest.wait_methods.iter().any(|m| m == id) {
                        let chain = self.receiver_chain(i - 1);
                        let recv = chain.last().cloned().unwrap_or_default();
                        if let Some(class) = self.class_for_cv(&recv) {
                            // The guard is moved into the wait: released
                            // now, reacquired by the wait's return value.
                            if let Some(arg) = self.first_arg_ident(i + 1) {
                                self.release_var(&arg);
                            }
                            for g in &self.held {
                                let line = self.file.line_of(t.off);
                                self.findings.push(Finding::new(
                                    Pass::LockOrder,
                                    self.file.path.clone(),
                                    line,
                                    format!(
                                        "condvar wait for '{}' while holding '{}' \
                                         (stall risk: the held lock blocks wakers)",
                                        self.manifest.classes[class].name,
                                        self.manifest.classes[g.class].name
                                    ),
                                ));
                            }
                            let binds = self.guard_escapes(i);
                            self.acquire(class, t.off, binds);
                        }
                        self.stmt_start = false;
                        i += 1;
                        continue;
                    }
                    if is_call && !is_macro && !KEYWORDS.contains(&id.as_str()) {
                        let (chain, path_call) = if is_method {
                            (self.receiver_chain(i - 1), false)
                        } else if is_path {
                            let ty = self
                                .tokens
                                .get(i.wrapping_sub(3))
                                .and_then(|t| t.ident())
                                .map(|s| s.to_string());
                            (ty.into_iter().collect(), true)
                        } else {
                            (Vec::new(), false)
                        };
                        if let Some(callee) =
                            self.resolver.resolve(&chain, id, path_call, self.item)
                        {
                            self.summary.calls.push(CallSite {
                                callee,
                                site: self.site(t.off),
                                callee_name: describe_fn(self.fns[callee].1),
                                held: self
                                    .held
                                    .iter()
                                    .map(|g| (g.class, g.site.clone()))
                                    .collect(),
                            });
                        }
                    }
                    // Statement-start `x = …` assignment binds like let.
                    if self.stmt_start
                        && self.peek(i + 1, b'=')
                        && !self.peek(i + 2, b'=')
                        && !KEYWORDS.contains(&id.as_str())
                    {
                        self.pending_bind = Some(id.clone());
                        self.bind_used = false;
                        self.rhs_count = 0;
                        self.rhs_ident = None;
                        self.stmt_start = false;
                        i += 2;
                        continue;
                    }
                    self.bump_rhs(Some(id.clone()));
                    self.stmt_start = false;
                    i += 1;
                }
                _ => {
                    self.bump_rhs(None);
                    self.stmt_start = false;
                    i += 1;
                }
            }
        }
    }

    fn bump_rhs(&mut self, ident: Option<String>) {
        if self.pending_bind.is_some() && !self.bind_used {
            self.rhs_count += 1;
            if self.rhs_count == 1 {
                self.rhs_ident = ident;
            }
        }
    }
}

/// `==`, `<=`, `>=`, `!=`, `+=` etc. around an `=` token: true when the
/// `=` at `j` is part of a two-char operator rather than a binding.
fn next_eq_is_cmp(tokens: &[Token], j: usize) -> bool {
    tokens.get(j + 1).is_some_and(|t| t.is_punct(b'='))
        || (j > 0
            && matches!(
                tokens[j - 1].tok,
                Tok::Punct(b'=')
                    | Tok::Punct(b'!')
                    | Tok::Punct(b'<')
                    | Tok::Punct(b'>')
                    | Tok::Punct(b'+')
                    | Tok::Punct(b'-')
                    | Tok::Punct(b'*')
                    | Tok::Punct(b'/')
            ))
}

fn describe_fn(f: &FnItem) -> String {
    match &f.self_ty {
        Some(ty) => format!("{ty}::{}", f.name),
        None => f.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn manifest_two(a_file: &str, b_file: &str) -> LockManifest {
        LockManifest {
            scan: vec![],
            order: vec!["left".into(), "right".into()],
            ignore_receivers: vec!["stdout".into(), "stderr".into()],
            lock_methods: vec!["lock".into(), "lock_recover".into()],
            wait_methods: vec!["wait".into(), "wait_timeout".into()],
            classes: vec![
                LockClass {
                    name: "left".into(),
                    files: vec![a_file.into()],
                    receivers: vec!["left".into()],
                    cvs: vec!["left_cv".into()],
                },
                LockClass {
                    name: "right".into(),
                    files: vec![b_file.into()],
                    receivers: vec!["right".into()],
                    cvs: vec![],
                },
            ],
        }
    }

    fn analyse(src: &str) -> Vec<Finding> {
        let m = manifest_two("m.rs", "m.rs");
        let f = SourceFile::parse("m.rs".into(), src.into());
        run(&m, &[f])
    }

    #[test]
    fn ordered_nesting_is_clean() {
        let findings = analyse(
            "struct S { left: Mutex<u32>, right: Mutex<u32> }\n\
             impl S {\n\
               fn ok(&self) {\n\
                 let a = self.left.lock().unwrap();\n\
                 let b = self.right.lock().unwrap();\n\
                 drop(b); drop(a);\n\
               }\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn reversed_nesting_violates_order() {
        let findings = analyse(
            "struct S { left: Mutex<u32>, right: Mutex<u32> }\n\
             impl S {\n\
               fn bad(&self) {\n\
                 let b = self.right.lock().unwrap();\n\
                 let a = self.left.lock().unwrap();\n\
                 drop(a); drop(b);\n\
               }\n\
             }",
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("orders 'left' before 'right'")),
            "{findings:#?}"
        );
    }

    #[test]
    fn two_fn_cycle_is_detected_with_chain() {
        let findings = analyse(
            "struct S { left: Mutex<u32>, right: Mutex<u32> }\n\
             impl S {\n\
               fn ab(&self) {\n\
                 let a = self.left.lock().unwrap();\n\
                 let b = self.right.lock().unwrap();\n\
                 drop(b); drop(a);\n\
               }\n\
               fn ba(&self) {\n\
                 let b = self.right.lock().unwrap();\n\
                 let a = self.left.lock().unwrap();\n\
                 drop(a); drop(b);\n\
               }\n\
             }",
        );
        let cycle = findings
            .iter()
            .find(|f| f.message.contains("lock-order cycle"))
            .unwrap_or_else(|| panic!("no cycle finding: {findings:#?}"));
        assert!(
            cycle.message.contains("left -> right -> left")
                || cycle.message.contains("right -> left -> right")
        );
        assert!(cycle.chain.len() >= 4, "chain shows both edges: {cycle:#?}");
        assert!(cycle.chain.iter().all(|l| l.file == "m.rs" && l.line > 0));
    }

    #[test]
    fn guard_drop_breaks_the_edge() {
        let findings = analyse(
            "struct S { left: Mutex<u32>, right: Mutex<u32> }\n\
             impl S {\n\
               fn ok(&self) {\n\
                 let b = self.right.lock().unwrap();\n\
                 drop(b);\n\
                 let a = self.left.lock().unwrap();\n\
                 drop(a);\n\
               }\n\
             }",
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn interprocedural_edge_through_method_call() {
        let findings = analyse(
            "struct S { left: Mutex<u32>, right: Mutex<u32> }\n\
             impl S {\n\
               fn inner_right(&self) { let g = self.right.lock().unwrap(); drop(g); }\n\
               fn outer(&self) {\n\
                 let a = self.left.lock().unwrap();\n\
                 self.inner_right();\n\
                 drop(a);\n\
               }\n\
               fn reversed(&self) {\n\
                 let b = self.right.lock().unwrap();\n\
                 self.inner_left();\n\
                 drop(b);\n\
               }\n\
               fn inner_left(&self) { let g = self.left.lock().unwrap(); drop(g); }\n\
             }",
        );
        // outer: left->right (fine); reversed: right->left via call =>
        // both an order violation and a cycle.
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("lock-order cycle")),
            "{findings:#?}"
        );
        let violation = findings
            .iter()
            .find(|f| f.message.contains("orders 'left' before 'right'"))
            .unwrap_or_else(|| panic!("{findings:#?}"));
        assert!(violation
            .chain
            .iter()
            .any(|l| l.note.contains("calls S::inner_left")));
    }

    #[test]
    fn condvar_wait_releases_and_reacquires() {
        let findings = analyse(
            "struct S { left: Mutex<u32>, left_cv: Condvar }\n\
             impl S {\n\
               fn wait_for_it(&self) {\n\
                 let mut g = self.left.lock().unwrap();\n\
                 loop {\n\
                   let (guard, _) = self.left_cv.wait_timeout(g, timeout).unwrap();\n\
                   g = guard;\n\
                 }\n\
               }\n\
             }",
        );
        // No self-deadlock finding: the wait releases before reacquiring.
        assert!(
            !findings.iter().any(|f| f.message.contains("self-deadlock")),
            "{findings:#?}"
        );
    }

    #[test]
    fn unmanifested_lock_is_reported() {
        let findings = analyse(
            "struct S { left: Mutex<u32>, mystery: Mutex<u32> }\n\
             impl S { fn f(&self) { let g = self.mystery.lock().unwrap(); drop(g); } }",
        );
        assert!(
            findings.iter().any(|f| f.message.contains("'mystery'")),
            "{findings:#?}"
        );
    }

    #[test]
    fn stale_manifest_entry_is_reported() {
        let findings = analyse("fn nothing() {}");
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("stale manifest entry")),
            "{findings:#?}"
        );
    }

    #[test]
    fn temporaries_release_at_statement_end() {
        let findings = analyse(
            "struct S { left: Mutex<u32>, right: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) {\n\
                 let n = self.right.lock().unwrap().clone();\n\
                 let g = self.left.lock().unwrap();\n\
                 drop(g);\n\
               }\n\
             }",
        );
        // right temp dies at `;`, so no right->left edge.
        assert!(
            !findings.iter().any(|f| f.message.contains("orders")),
            "{findings:#?}"
        );
    }
}
