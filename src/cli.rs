//! The `seqpoint` command-line interface.
//!
//! Everything the binary does lives here as testable functions over
//! readers/writers; `src/bin/seqpoint.rs` is a thin argv wrapper.
//!
//! Subcommands:
//!
//! * `simulate` — run one training epoch of a bundled model on a
//!   Table II configuration and write the per-iteration `(seq_len, stat)`
//!   log as CSV;
//! * `identify` — run the SeqPoint pipeline on an epoch-log CSV and
//!   print the SeqPoints with their weights;
//! * `baselines` — compare the paper's baseline selectors against
//!   SeqPoint on an epoch-log CSV;
//! * `project` — combine an identified SeqPoint set with re-profiled
//!   per-SL statistics to project a whole-epoch total;
//! * `stream` — profile a steady-state epoch in streaming mode: sharded
//!   workers, saturation early stop, selection on streamed counts;
//! * `serve` — run the async profiling service: accept jobs over a Unix
//!   socket (and, with `--tcp` + `--token-file`, over authenticated
//!   TCP), dispatch rounds to thread or subprocess workers, drain
//!   gracefully on SIGTERM (checkpointing in-flight jobs);
//! * `submit` — client for `serve`: submit jobs, query
//!   status/result/cancel, ping, or request a drain — over the Unix
//!   socket or TCP (`--connect HOST:PORT --token-file FILE`);
//! * `worker` — subprocess shard executor that serves rounds for
//!   `serve --placement subprocess`, locally over the Unix socket or
//!   from another machine over TCP.

use std::fmt::Write as _;
use std::io::BufRead;
use std::path::PathBuf;

use seqpoint_core::protocol::{JobSpec, Request, Response};
use seqpoint_service::client::{Client, ClientOptions};
use seqpoint_service::transport::load_token;
use seqpoint_service::{Endpoint, Placement, ServeConfig};

use gpu_sim::{Device, GpuConfig};
use seqpoint_core::stats::relative_error_pct;
use seqpoint_core::{BaselineKind, EpochLog, SeqPointConfig, SeqPointPipeline};
use sqnn::Network;
use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
use sqnn_profiler::stream::{
    profile_epoch_streaming_checkpointed, CheckpointOptions, StreamOptions, StreamOutcome,
};
use sqnn_profiler::Profiler;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command-line usage; the string is a help-style message.
    Usage(String),
    /// Malformed input data.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Anything the underlying library rejected.
    Library(String),
    /// I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            CliError::Library(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

fn lib_err(e: impl std::fmt::Display) -> CliError {
    CliError::Library(e.to_string())
}

/// Parse an epoch-log CSV (`seq_len,stat` per line; optional header).
///
/// # Errors
///
/// [`CliError::Parse`] on malformed lines; [`CliError::Io`] on read
/// failure.
pub fn parse_epoch_log(reader: impl BufRead) -> Result<EpochLog, CliError> {
    let mut log = EpochLog::new();
    let mut seen_data = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !seen_data && trimmed.to_lowercase().starts_with("seq_len") {
            continue; // header
        }
        seen_data = true;
        let mut parts = trimmed.split(',');
        let sl = parts
            .next()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .ok_or_else(|| CliError::Parse {
                line: line_no,
                reason: "expected integer seq_len".to_owned(),
            })?;
        let stat = parts
            .next()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .ok_or_else(|| CliError::Parse {
                line: line_no,
                reason: "expected float stat".to_owned(),
            })?;
        log.push(sl, stat);
    }
    if log.is_empty() {
        return Err(CliError::Parse {
            line: 0,
            reason: "log contains no iterations".to_owned(),
        });
    }
    Ok(log)
}

/// Parse a per-SL statistic CSV (`seq_len,stat` per line) into a lookup.
///
/// # Errors
///
/// As [`parse_epoch_log`].
pub fn parse_sl_stats(
    reader: impl BufRead,
) -> Result<std::collections::HashMap<u32, f64>, CliError> {
    let log = parse_epoch_log(reader)?;
    Ok(log
        .sl_profiles()
        .into_iter()
        .map(|p| (p.seq_len, p.mean_stat))
        .collect())
}

/// Resolve a bundled model by name (delegates to the service's
/// resolver so the CLI and served jobs can never drift apart).
///
/// # Errors
///
/// [`CliError::Usage`] for an unknown name.
pub fn model_by_name(name: &str) -> Result<Network, CliError> {
    seqpoint_service::spec::model_by_name(name).map_err(|e| CliError::Usage(e.to_string()))
}

/// Resolve a bundled dataset by name at the given sample count
/// (delegates to the service's resolver).
///
/// # Errors
///
/// [`CliError::Usage`] for an unknown name.
pub fn corpus_by_name(name: &str, samples: usize, seed: u64) -> Result<Corpus, CliError> {
    seqpoint_service::spec::corpus_by_name(name, samples, seed)
        .map_err(|e| CliError::Usage(e.to_string()))
}

/// `simulate`: profile one epoch and render the log as CSV.
///
/// # Errors
///
/// Usage errors for unknown names/configs; library errors from planning
/// or profiling.
pub fn simulate(
    model: &str,
    dataset: &str,
    samples: usize,
    config_no: usize,
    seed: u64,
) -> Result<String, CliError> {
    if !(1..=5).contains(&config_no) {
        return Err(CliError::Usage(
            "config must be 1..=5 (Table II)".to_owned(),
        ));
    }
    let network = model_by_name(model)?;
    let corpus = corpus_by_name(dataset, samples, seed)?;
    let policy = if model == "ds2" {
        BatchPolicy::sorted_first_epoch(64)
    } else {
        BatchPolicy::bucketed(64, 16)
    };
    let plan = EpochPlan::new(&corpus, policy, seed).map_err(lib_err)?;
    let cfg = GpuConfig::table2_configs()[config_no - 1].clone();
    let profile = Profiler::new()
        .profile_epoch(&network, &plan, &Device::new(cfg))
        .map_err(lib_err)?;
    let mut out = String::from("seq_len,stat\n");
    for it in profile.iterations() {
        let _ = writeln!(out, "{},{}", it.seq_len, it.time_s);
    }
    Ok(out)
}

/// `stream`: profile a steady-state (shuffled) epoch in streaming mode
/// and render the early-stop accounting plus the selected SeqPoints.
///
/// Every epoch after the first is shuffled (DS2 only sorts its first;
/// GNMT reshuffles bucket order), so the streaming path batches the
/// corpus uniformly at `batch` samples per iteration.
///
/// With a `checkpoint` policy the run persists its state to the policy's
/// path (atomically, every `every_rounds` rounds), resumes automatically
/// when that file already exists, and — when the policy's `max_rounds`
/// preemption limit is hit — reports the pause instead of a selection.
///
/// # Errors
///
/// Usage errors for unknown names/configs or a zero batch size; library
/// errors from planning, profiling, selection, or checkpoint I/O.
// One parameter per CLI flag: bundling them would just move the flag
// list into a struct literal at the single argv call site.
#[allow(clippy::too_many_arguments)]
pub fn stream(
    model: &str,
    dataset: &str,
    samples: usize,
    config_no: usize,
    seed: u64,
    batch: u32,
    options: &StreamOptions,
    checkpoint: Option<&CheckpointOptions>,
) -> Result<String, CliError> {
    if !(1..=5).contains(&config_no) {
        return Err(CliError::Usage(
            "config must be 1..=5 (Table II)".to_owned(),
        ));
    }
    if batch == 0 {
        return Err(CliError::Usage("--batch must be positive".to_owned()));
    }
    let network = model_by_name(model)?;
    let corpus = corpus_by_name(dataset, samples, seed)?;
    let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(batch), seed).map_err(lib_err)?;
    let cfg = GpuConfig::table2_configs()[config_no - 1].clone();
    let device = Device::new(cfg);
    let profiler = Profiler::new();
    let streamed = match checkpoint {
        Some(policy) => {
            match profile_epoch_streaming_checkpointed(
                &profiler, &network, &plan, &device, options, policy,
            )
            .map_err(lib_err)?
            {
                StreamOutcome::Complete(profile) => profile,
                StreamOutcome::Paused(pause) => {
                    return Ok(format!(
                        "# streaming selection paused: {}/{} iterations consumed \
                         ({} rounds ingested)\n\
                         # state checkpointed to {}\n\
                         # re-run the same command to resume\n",
                        pause.iterations_consumed,
                        pause.iterations_total,
                        pause.rounds_ingested,
                        pause.path.display()
                    ));
                }
            }
        }
        None => sqnn_profiler::stream::profile_epoch_streaming(
            &profiler, &network, &plan, &device, options,
        )
        .map_err(lib_err)?,
    };
    // The one renderer, shared with the service: `seqpoint submit`
    // results diff clean against this command's output.
    Ok(seqpoint_service::spec::render_streamed(
        model,
        dataset,
        config_no as u32,
        &streamed,
    ))
}

/// `identify`: run the pipeline and render the SeqPoints.
///
/// # Errors
///
/// Library errors from the pipeline (empty log, unmet threshold, …).
pub fn identify(log: &EpochLog, config: SeqPointConfig) -> Result<String, CliError> {
    let analysis = SeqPointPipeline::with_config(config)
        .run(log)
        .map_err(lib_err)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} SeqPoints for {} iterations ({} unique SLs), k={}, self error {:.4}%",
        analysis.seqpoints().len(),
        analysis.iterations(),
        analysis.unique_sls(),
        analysis.k(),
        analysis.self_error_pct()
    );
    let _ = writeln!(out, "seq_len,weight,stat");
    for p in analysis.seqpoints().points() {
        let _ = writeln!(out, "{},{},{}", p.seq_len, p.weight, p.stat);
    }
    Ok(out)
}

/// `baselines`: compare every scheme's self-projection error.
///
/// # Errors
///
/// Library errors from selection or the pipeline.
pub fn baselines(log: &EpochLog, config: SeqPointConfig) -> Result<String, CliError> {
    let actual = log.actual_total();
    let mut out = String::from("scheme,points,projected,error_pct\n");
    for kind in BaselineKind::paper_set() {
        let sel = kind.select(log).map_err(lib_err)?;
        let pred = sel.project_total_with(|sl| {
            log.mean_stat_of(sl)
                .expect("selection SLs come from the log")
        });
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.4}",
            kind.label(),
            sel.unique_seq_lens().len(),
            pred,
            relative_error_pct(pred, actual)
        );
    }
    let analysis = SeqPointPipeline::with_config(config)
        .run(log)
        .map_err(lib_err)?;
    let _ = writeln!(
        out,
        "seqpoint,{},{:.6},{:.4}",
        analysis.seqpoints().len(),
        analysis.predicted_total(),
        analysis.self_error_pct()
    );
    Ok(out)
}

/// `project`: Eq. 1 with re-profiled statistics.
///
/// # Errors
///
/// [`CliError::Usage`] if a SeqPoint SL is missing from the re-profiled
/// statistics; library errors from the pipeline.
pub fn project(
    log: &EpochLog,
    restats: &std::collections::HashMap<u32, f64>,
    config: SeqPointConfig,
) -> Result<String, CliError> {
    let analysis = SeqPointPipeline::with_config(config)
        .run(log)
        .map_err(lib_err)?;
    let mut missing = Vec::new();
    for sl in analysis.seqpoints().seq_lens() {
        if !restats.contains_key(&sl) {
            missing.push(sl);
        }
    }
    if !missing.is_empty() {
        return Err(CliError::Usage(format!(
            "re-profiled stats missing SeqPoint SLs {missing:?}"
        )));
    }
    let projected = analysis.seqpoints().project_total_with(|sl| restats[&sl]);
    Ok(format!(
        "projected_total,{projected:.6}\nseqpoints,{}\n",
        analysis.seqpoints().len()
    ))
}

/// Arguments of the `serve` subcommand.
pub struct ServeArgs {
    /// Unix socket to listen on.
    pub socket: PathBuf,
    /// Additional TCP listener (`host:port`; requires `token_file`).
    pub tcp: Option<String>,
    /// Shared-secret token file gating TCP connections.
    pub token_file: Option<PathBuf>,
    /// Directory for specs, checkpoints, and results.
    pub state_dir: PathBuf,
    /// Concurrent job slots.
    pub jobs: usize,
    /// Bounded queue capacity.
    pub queue_cap: usize,
    /// Keep at most this many terminal jobs (`None` = keep all).
    pub retain_jobs: Option<usize>,
    /// Evict terminal jobs older than this many seconds (`None` = keep
    /// forever). Composes with `retain_jobs`: whichever bound trips
    /// first evicts.
    pub retain_for: Option<u64>,
    /// `thread` or `subprocess`.
    pub placement: String,
    /// Worker processes under subprocess placement (0 = rely on
    /// externally connected `seqpoint worker` processes).
    pub workers: usize,
    /// Weighted-fair queueing across job classes (`--fair`, the
    /// default; `--fifo` restores strict global FIFO).
    pub fair: bool,
    /// Per-client in-flight job quota (`--quota N`; `None` unlimited).
    pub quota: Option<usize>,
    /// Plaintext metrics scrape endpoint (`--metrics-addr HOST:PORT`;
    /// port 0 picks an ephemeral port published to
    /// `<state_dir>/serve.metrics`).
    pub metrics_addr: Option<String>,
}

/// `serve`: run the async profiling service until SIGTERM/SIGINT or a
/// protocol `Shutdown` drains it (in-flight jobs checkpoint and resume
/// on the next start).
///
/// # Errors
///
/// Usage errors for an unknown placement; library errors from socket or
/// state-dir setup.
pub fn serve(args: &ServeArgs) -> Result<String, CliError> {
    let placement = match args.placement.as_str() {
        "thread" | "threads" => Placement::Threads,
        "subprocess" => Placement::Subprocess {
            workers: args.workers,
        },
        other => {
            return Err(CliError::Usage(format!(
                "unknown placement `{other}` (expected thread|subprocess)"
            )))
        }
    };
    let token = match &args.token_file {
        Some(path) => Some(load_token(path).map_err(lib_err)?),
        None => None,
    };
    seqpoint_service::serve(ServeConfig {
        socket: args.socket.clone(),
        tcp: args.tcp.clone(),
        token,
        state_dir: args.state_dir.clone(),
        job_slots: args.jobs,
        queue_cap: args.queue_cap,
        wait_heartbeat: std::time::Duration::from_secs(15),
        retain_jobs: args.retain_jobs,
        retain_for: args
            .retain_for
            .filter(|secs| *secs > 0)
            .map(std::time::Duration::from_secs),
        placement,
        worker_exe: None,
        fair: args.fair,
        client_quota: args.quota,
        metrics_addr: args.metrics_addr.clone(),
    })
    .map_err(lib_err)?;
    Ok(String::new())
}

/// Connection flags shared by `submit` and `worker`: where to dial and
/// what credential to present.
pub struct ConnectArgs {
    /// The server endpoint (`--socket PATH` or `--connect HOST:PORT`).
    pub endpoint: Endpoint,
    /// Shared-secret token file (`--token-file`), required over TCP.
    pub token_file: Option<PathBuf>,
    /// Socket I/O timeout in seconds (`--io-timeout`; 0 disables it).
    pub io_timeout_secs: Option<u64>,
    /// Client identity announced in the handshake (`--client NAME`);
    /// the server accounts fairness and quotas to it.
    pub client: Option<String>,
}

impl ConnectArgs {
    fn client_options(&self) -> Result<ClientOptions, CliError> {
        let mut options = ClientOptions::default();
        if let Some(path) = &self.token_file {
            options.token = Some(load_token(path).map_err(lib_err)?);
        }
        if let Some(secs) = self.io_timeout_secs {
            options.io_timeout = if secs == 0 {
                None
            } else {
                Some(std::time::Duration::from_secs(secs))
            };
        }
        options.client = self.client.clone();
        Ok(options)
    }
}

/// `worker`: serve shard rounds for a `seqpoint serve --placement
/// subprocess` daemon. Over the Unix socket this is one session (the
/// local supervisor respawns the process); over TCP — the
/// remote-machine entry point — the worker authenticates with the
/// token and **reconnects** after the server closes its connection (a
/// poisoned round or a sibling worker's death is routine there),
/// exiting once the server stays unreachable.
///
/// # Errors
///
/// Library errors when the endpoint is unreachable, the handshake is
/// refused, or the connection breaks.
pub fn worker(conn: &ConnectArgs) -> Result<String, CliError> {
    let options = conn.client_options()?;
    if conn.endpoint.is_tcp() {
        // `--io-timeout` governs the connect-phase handshake read here;
        // the task loop deliberately never times out (an idle worker
        // waits indefinitely, and a dead server surfaces as a closed
        // connection).
        let handshake_timeout = match conn.io_timeout_secs {
            None => Some(seqpoint_service::worker::DEFAULT_HANDSHAKE_TIMEOUT),
            Some(0) => None,
            Some(secs) => Some(std::time::Duration::from_secs(secs)),
        };
        seqpoint_service::worker::run_worker_resilient(
            &conn.endpoint,
            options.token.as_deref(),
            std::time::Duration::from_secs(10),
            handshake_timeout,
        )
        .map_err(lib_err)?;
    } else {
        seqpoint_service::worker::run_worker_at(&conn.endpoint, options.token.as_deref())
            .map_err(lib_err)?;
    }
    Ok(String::new())
}

/// What `submit` should do on the socket.
pub enum SubmitAction {
    /// Submit a job; unless `detach`, block for and print its result.
    Job {
        /// Client-chosen job id (server assigns `job-<n>` otherwise).
        job: Option<String>,
        /// The job to run.
        spec: JobSpec,
        /// Print `submitted,<id>` instead of waiting.
        detach: bool,
        /// After the job settles, print a `stats,…` accounting line
        /// (state, cache hit) followed by the server's live metrics
        /// exposition to **stderr**, so stdout stays byte-identical to
        /// `seqpoint stream`.
        stats: bool,
    },
    /// Liveness/stats probe.
    Ping,
    /// Print a job's lifecycle state.
    Status(String),
    /// Block for and print a job's result.
    Result(String),
    /// Cancel a job.
    Cancel(String),
    /// Ask the server to drain.
    Shutdown,
}

/// `submit`: the scripting client of `seqpoint serve`.
///
/// Job results print byte-identically to `seqpoint stream` on the same
/// spec — whether the connection is the Unix socket or authenticated
/// TCP; queries print one `,`-separated line each (`pong,…`,
/// `<job>,<state>,<detail>`, `cancelled,<job>`, `shutting-down`).
///
/// # Errors
///
/// Library errors for unreachable endpoints, refused handshakes,
/// rejected submissions (backpressure), failed/cancelled jobs, and
/// unknown job ids.
pub fn submit(conn: &ConnectArgs, action: SubmitAction) -> Result<String, CliError> {
    let options = conn.client_options()?;
    let mut client = Client::open(&conn.endpoint, &options).map_err(lib_err)?;
    let unexpected =
        |response: Response| CliError::Library(format!("unexpected server response: {response:?}"));
    match action {
        SubmitAction::Job {
            job,
            spec,
            detach,
            stats,
        } => {
            let id = client.submit(job, spec).map_err(lib_err)?;
            let output = if detach {
                Ok(format!("submitted,{id}\n"))
            } else {
                client.wait_result(&id).map_err(lib_err)
            };
            if stats && output.is_ok() {
                // Accounting goes to stderr: stdout must stay
                // byte-identical to `seqpoint stream` on the same spec.
                match client
                    .request(&Request::Status { job: id.clone() })
                    .map_err(lib_err)?
                {
                    Response::Status {
                        state, cache_hit, ..
                    } => {
                        eprintln!("stats,{id},state={},cache_hit={cache_hit}", state.label());
                    }
                    other => return Err(unexpected(other)),
                }
                // The live registry view: the same text exposition the
                // scrape endpoint serves, fetched over the socket.
                match client.request(&Request::Metrics).map_err(lib_err)? {
                    Response::Metrics { text } => eprint!("{text}"),
                    other => return Err(unexpected(other)),
                }
            }
            output
        }
        SubmitAction::Ping => match client.request(&Request::Ping).map_err(lib_err)? {
            Response::Pong {
                version,
                queued,
                running,
                workers,
                cache_hits,
                cache_entries,
                fleet_idle,
                fleet_leases,
                fleet_reclaimed,
            } => {
                let workers = workers
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                let fleet_idle = fleet_idle
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                Ok(format!(
                    "pong,version={version},queued={queued},running={running},\
                     workers={workers},cache_hits={cache_hits},cache_entries={cache_entries},\
                     fleet_idle={fleet_idle},fleet_leases={fleet_leases},\
                     fleet_reclaimed={fleet_reclaimed}\n"
                ))
            }
            other => Err(unexpected(other)),
        },
        SubmitAction::Status(job) => {
            match client.request(&Request::Status { job }).map_err(lib_err)? {
                Response::Status {
                    job,
                    state,
                    detail,
                    cache_hit,
                } => Ok(format!(
                    "{job},{},{detail},cache_hit={cache_hit}\n",
                    state.label()
                )),
                Response::Error { reason } => Err(CliError::Library(reason)),
                other => Err(unexpected(other)),
            }
        }
        SubmitAction::Result(job) => client.wait_result(&job).map_err(lib_err),
        SubmitAction::Cancel(job) => {
            match client.request(&Request::Cancel { job }).map_err(lib_err)? {
                Response::Cancelled { job } => Ok(format!("cancelled,{job}\n")),
                Response::Error { reason } => Err(CliError::Library(reason)),
                other => Err(unexpected(other)),
            }
        }
        SubmitAction::Shutdown => match client.request(&Request::Shutdown).map_err(lib_err)? {
            Response::ShuttingDown => Ok("shutting-down\n".to_owned()),
            other => Err(unexpected(other)),
        },
    }
}

/// Run the `seqpoint-lint` static-analysis passes (`seqpoint lint`).
///
/// `passes` is the comma-separated selection (`None` runs all three);
/// `bless` re-records the protocol digest instead of checking. Findings
/// are an error — the command exits non-zero, same as the standalone
/// `seqpoint-lint` binary.
///
/// # Errors
///
/// [`CliError::Usage`] for an unknown pass name; [`CliError::Library`]
/// carrying the rendered findings when any pass fails.
pub fn lint(
    root: &std::path::Path,
    passes: Option<&str>,
    github: bool,
    bless: bool,
) -> Result<String, CliError> {
    use seqpoint_analysis::report::{Finding, Pass};

    if bless {
        seqpoint_analysis::protocol::bless(root).map_err(CliError::Library)?;
        return Ok(format!(
            "seqpoint-lint: blessed {} from current sources\n",
            seqpoint_analysis::protocol::DIGEST_PATH
        ));
    }

    let selected = match passes {
        None => seqpoint_analysis::all_passes(),
        Some(list) => {
            let mut selected = Vec::new();
            for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                selected.push(Pass::from_name(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "--pass: unknown pass `{name}` (expected lock-order, panics, protocol)"
                    ))
                })?);
            }
            if selected.is_empty() {
                return Err(CliError::Usage(
                    "--pass requires at least one pass name".to_owned(),
                ));
            }
            selected
        }
    };

    let findings = seqpoint_analysis::run_passes(root, &selected);
    let names: Vec<&str> = selected.iter().map(|p| p.name()).collect();
    if findings.is_empty() {
        return Ok(format!("seqpoint-lint: clean ({})\n", names.join(", ")));
    }
    let render = if github {
        Finding::render_github
    } else {
        Finding::render_human
    };
    let mut out = String::new();
    for f in &findings {
        let _ = writeln!(out, "{}", render(f));
    }
    let _ = write!(
        out,
        "seqpoint-lint: {} finding(s) ({})",
        findings.len(),
        names.join(", ")
    );
    Err(CliError::Library(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_csv() -> String {
        let mut s = String::from("seq_len,stat\n");
        for i in 0..200u32 {
            let sl = 10 + (i * 13) % 90;
            s.push_str(&format!("{},{}\n", sl, 0.2 + f64::from(sl) * 0.01));
        }
        s
    }

    #[test]
    fn parse_accepts_header_comments_and_blanks() {
        let csv = format!("# comment\n\n{}", sample_csv());
        let log = parse_epoch_log(Cursor::new(csv)).unwrap();
        assert_eq!(log.len(), 200);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = parse_epoch_log(Cursor::new("seq_len,stat\nnot,a,number\n")).unwrap_err();
        match err {
            CliError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
        assert!(parse_epoch_log(Cursor::new("")).is_err());
    }

    #[test]
    fn identify_round_trips_through_csv() {
        let log = parse_epoch_log(Cursor::new(sample_csv())).unwrap();
        let out = identify(&log, SeqPointConfig::default()).unwrap();
        assert!(out.starts_with('#'));
        assert!(out.contains("seq_len,weight,stat"));
        // The weights printed sum to the iteration count.
        let total: u64 = out
            .lines()
            .skip(2)
            .map(|l| l.split(',').nth(1).unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn baselines_reports_all_five_schemes() {
        let log = parse_epoch_log(Cursor::new(sample_csv())).unwrap();
        let out = baselines(&log, SeqPointConfig::default()).unwrap();
        for scheme in ["worst", "frequent", "median", "prior", "seqpoint"] {
            assert!(out.contains(&format!("\n{scheme},")) || out.starts_with(scheme));
        }
    }

    #[test]
    fn project_needs_every_seqpoint_sl() {
        let log = parse_epoch_log(Cursor::new(sample_csv())).unwrap();
        let empty = std::collections::HashMap::new();
        assert!(matches!(
            project(&log, &empty, SeqPointConfig::default()),
            Err(CliError::Usage(_))
        ));
        // Self-projection: reuse the log's own per-SL means.
        let stats = parse_sl_stats(Cursor::new(sample_csv())).unwrap();
        let out = project(&log, &stats, SeqPointConfig::default()).unwrap();
        assert!(out.starts_with("projected_total,"));
    }

    #[test]
    fn simulate_emits_a_parseable_log() {
        let csv = simulate("gnmt", "iwslt15", 1_500, 1, 5).unwrap();
        let log = parse_epoch_log(Cursor::new(csv)).unwrap();
        assert_eq!(log.len(), 1_500usize.div_ceil(64));
        assert!(log.actual_total() > 0.0);
    }

    #[test]
    fn stream_reports_accounting_and_a_selection() {
        use seqpoint_core::stream::StreamConfig;
        // A shuffled epoch large enough to saturate under the lenient
        // thresholds (cf. the streaming ablation's quick-scale setup).
        let options = StreamOptions {
            shards: 3,
            round_len: 32,
            stream: StreamConfig {
                saturation_window: 128,
                unseen_threshold: 0.05,
                quantization: 8,
                ..StreamConfig::default()
            },
            ..StreamOptions::default()
        };
        let out = stream("gnmt", "iwslt15", 6_000, 1, 20, 16, &options, None).unwrap();
        assert!(out.starts_with("# streaming selection"));
        for field in [
            "iterations_total,375",
            "iterations_measured,",
            "early_stopped,true",
            "seq_len,weight,stat",
        ] {
            assert!(out.contains(field), "missing `{field}` in:\n{out}");
        }
        // The weights cover the WHOLE epoch even though measurement
        // stopped early.
        let total: u64 = out
            .lines()
            .skip_while(|l| !l.starts_with("seq_len"))
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 375);
    }

    #[test]
    fn stream_checkpoint_pauses_then_resumes_to_the_same_selection() {
        use seqpoint_core::stream::StreamConfig;
        let options = StreamOptions {
            shards: 3,
            round_len: 32,
            stream: StreamConfig {
                saturation_window: 128,
                unseen_threshold: 0.05,
                quantization: 8,
                ..StreamConfig::default()
            },
            ..StreamOptions::default()
        };
        let reference = stream("gnmt", "iwslt15", 6_000, 1, 20, 16, &options, None).unwrap();

        let mut path = std::env::temp_dir();
        path.push(format!("seqpoint-cli-ckpt-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // First invocation: preempted after 2 rounds.
        let paused = stream(
            "gnmt",
            "iwslt15",
            6_000,
            1,
            20,
            16,
            &options,
            Some(&CheckpointOptions {
                path: path.clone(),
                every_rounds: 1,
                max_rounds: Some(2),
            }),
        )
        .unwrap();
        assert!(paused.contains("paused"), "{paused}");
        assert!(path.exists());
        // Second invocation: resumes from the file and completes with
        // the exact selection of the uninterrupted run.
        let resumed = stream(
            "gnmt",
            "iwslt15",
            6_000,
            1,
            20,
            16,
            &options,
            Some(&CheckpointOptions::new(path.clone())),
        )
        .unwrap();
        assert_eq!(resumed, reference);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stream_validates_inputs() {
        let options = StreamOptions::default();
        assert!(matches!(
            stream("nope", "iwslt15", 100, 1, 0, 16, &options, None),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            stream("gnmt", "iwslt15", 100, 9, 0, 16, &options, None),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            stream("gnmt", "iwslt15", 100, 1, 0, 0, &options, None),
            Err(CliError::Usage(_))
        ));
        let bad = StreamOptions {
            shards: 0,
            ..StreamOptions::default()
        };
        assert!(matches!(
            stream("gnmt", "iwslt15", 100, 1, 0, 16, &bad, None),
            Err(CliError::Library(_))
        ));
    }

    #[test]
    fn simulate_validates_inputs() {
        assert!(matches!(
            simulate("nope", "iwslt15", 100, 1, 0),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            simulate("gnmt", "nope", 100, 1, 0),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            simulate("gnmt", "iwslt15", 100, 9, 0),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn model_and_corpus_lookups_cover_the_zoo() {
        for m in ["gnmt", "ds2", "cnn", "transformer", "convs2s", "seq2seq"] {
            assert!(model_by_name(m).is_ok(), "{m}");
        }
        for d in ["iwslt15", "wmt16", "librispeech100"] {
            assert!(corpus_by_name(d, 500, 1).is_ok(), "{d}");
        }
        let ls = corpus_by_name("librispeech100", 500, 1).unwrap();
        assert_eq!(ls.len(), 500);
    }
}
