//! The `seqpoint` command-line tool: simulate SQNN training epochs,
//! identify SeqPoints from epoch-log CSVs, compare baselines, and
//! project whole-training statistics.
//!
//! ```text
//! seqpoint simulate --model gnmt --dataset iwslt15 --samples 20000 --config 1 > epoch.csv
//! seqpoint identify --log epoch.csv --error 0.1
//! seqpoint baselines --log epoch.csv
//! seqpoint project --log epoch.csv --restats new_hw_stats.csv
//! seqpoint stream   --model gnmt --dataset iwslt15 --samples 20000 --shards 4
//! seqpoint serve    --socket /tmp/sp.sock --state-dir /tmp/sp-state --jobs 2
//! seqpoint submit   --socket /tmp/sp.sock --model gnmt --dataset iwslt15
//! seqpoint worker   --socket /tmp/sp.sock
//! ```

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use seqpoint::cli::{self, CliError};
use seqpoint::seqpoint_core::SeqPointConfig;

const USAGE: &str = "\
seqpoint — representative iterations of sequence-based neural networks

USAGE:
  seqpoint simulate  --model <gnmt|ds2|cnn|transformer|convs2s|seq2seq>
                     --dataset <iwslt15|wmt16|librispeech100>
                     [--samples N] [--config 1..5] [--seed S]
  seqpoint identify  --log <epoch.csv> [--error PCT] [--k0 K] [--n N] [--max-k K]
  seqpoint baselines --log <epoch.csv> [--error PCT]
  seqpoint project   --log <epoch.csv> --restats <sl_stats.csv> [--error PCT]
  seqpoint stream    --model <...> --dataset <...> [--samples N] [--config 1..5]
                     [--seed S] [--batch B] [--shards K] [--round R]
                     [--window W] [--unseen P] [--quant Q] [pipeline flags]
                     [--checkpoint FILE] [--checkpoint-every N] [--max-rounds M]
  seqpoint serve     --socket PATH --state-dir DIR [--jobs N] [--queue-cap N]
                     [--placement thread|subprocess] [--workers N]
                     [--tcp HOST:PORT --token-file FILE] [--retain-jobs N]
                     [--retain-for SECS] [--fair | --fifo] [--quota N]
                     [--metrics-addr HOST:PORT]
  seqpoint submit    (--socket PATH | --connect HOST:PORT)
                     [--token-file FILE] [--io-timeout SECS] [--client NAME]
                     --model <...> --dataset <...> [stream flags]
                     [--job ID] [--class interactive|batch] [--max-rounds M]
                     [--throttle-ms MS] [--detach] [--stats]
  seqpoint submit    (--socket PATH | --connect HOST:PORT) [--token-file FILE]
                     (--ping | --status ID | --result ID |
                     --cancel ID | --shutdown)
  seqpoint worker    (--socket PATH | --connect HOST:PORT) [--token-file FILE]
  seqpoint lint      [--root DIR] [--pass lock-order,panics,protocol]
                     [--github] [--bless-protocol]

`stream` profiles a steady-state (shuffled) epoch with K worker shards,
stops measuring once the SL space saturates (no new SL bucket within W
iterations, or Good-Turing unseen probability at most P at bucket width
Q), replays the rest of the epoch from already-profiled shapes (only
never-seen shapes are measured on demand), and selects SeqPoints from
the streamed aggregates.

With --checkpoint FILE the run persists its state to FILE atomically
every N rounds (default 8) and **resumes from FILE automatically when it
exists** — an interrupted run re-invoked with the same flags finishes
with the exact selection of an uninterrupted one. --max-rounds M stops
after M rounds in this invocation (writing the checkpoint), simulating
preemption for tests and batch schedulers.

`serve` runs the async profiling service: jobs arrive as NDJSON over the
Unix socket, wait in a bounded queue (submissions beyond --queue-cap are
rejected with backpressure), and execute on --jobs concurrent runners.
Every round checkpoints into --state-dir; SIGTERM (or `submit
--shutdown`) drains gracefully and a restart resumes unfinished jobs
with bit-identical results. --placement subprocess spawns --workers
`seqpoint worker` processes and ships shard chunks to them over the
socket, exchanging checkpoint-format shard state (a dead worker is
respawned and its job resumes from the last per-round checkpoint; pass
--workers 0 to rely solely on externally started workers).

--tcp HOST:PORT adds a TCP listener next to the Unix socket, making
remote clients and remote shard workers a pure config change. It
requires --token-file: every TCP connection must present the
single-line shared secret in its handshake (constant-time compared;
unauthenticated frames get one error line and a close). The bound
address — useful with port 0 — is written to STATE_DIR/serve.tcp. The
NDJSON itself is plaintext: tunnel it (TLS, SSH) on untrusted networks.
--retain-jobs N keeps at most N finished/failed/cancelled jobs (memory
and state files), evicting oldest-first; recovery applies the bound.
--retain-for SECS additionally evicts terminal jobs older than SECS
seconds (0 disables the TTL); whichever bound trips first evicts.

The server is multi-tenant: submissions carry a job class (--class
interactive|batch) and a client identity (--client NAME, or the TCP
handshake identity). Weighted-fair queueing (on by default; --fifo
restores strict FIFO) gives interactive jobs 4 slots for every batch
slot under contention and serves clients round-robin within a class;
--quota N rejects a client's submissions beyond N in-flight jobs.
Identical specs are served from a selection result cache: a duplicate
of an in-flight job attaches to it (single-flight, one profiling run),
a duplicate of a retained result returns immediately — byte-identical
either way. `submit --stats` prints a `stats,<job>,state=…,cache_hit=…`
line followed by the server's live metrics to stderr; `submit --ping`
reports cache and worker-fleet counters. --metrics-addr HOST:PORT adds
a plaintext scrape endpoint serving the same metrics to any GET request
(port 0 publishes the bound address to STATE_DIR/serve.metrics); see
docs/metrics.md for the catalog.

`submit` is the client: by default it submits and blocks for the result,
which is byte-identical to `seqpoint stream` with the same flags —
whichever transport carried it. --io-timeout SECS bounds every socket
read/write (default 600, 0 disables) so a wedged daemon fails the
command instead of hanging it.

`worker` connects to a daemon and serves shard rounds: `--socket` for a
local daemon, `--connect HOST:PORT --token-file FILE` for one on
another machine.

`lint` runs the workspace's own static analysis (the `seqpoint-lint`
binary behind a subcommand): lock-order simulation against
analysis/lock_order.toml, the justified-waiver panic-path lint, and
the protocol frame-digest drift check. Findings make the command fail;
--github renders them as workflow annotations, --bless-protocol
re-records the frame digest after a deliberate PROTOCOL_VERSION bump.

Epoch-log CSV format: one `seq_len,stat` pair per line (header optional).";

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &[
    "detach",
    "ping",
    "shutdown",
    "stats",
    "fair",
    "fifo",
    "github",
    "bless-protocol",
];

struct Flags {
    args: Vec<(String, String)>,
}

impl Flags {
    fn parse(argv: &[String]) -> Result<Flags, CliError> {
        let mut args = Vec::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument `{flag}`")));
            };
            if BOOL_FLAGS.contains(&name) {
                args.push((name.to_owned(), String::from("true")));
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
            args.push((name.to_owned(), value.clone()));
        }
        Ok(Flags { args })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name}: cannot parse `{v}`"))),
        }
    }
}

fn pipeline_config(flags: &Flags) -> Result<SeqPointConfig, CliError> {
    Ok(SeqPointConfig {
        error_threshold_pct: flags.num("error", 1.0)?,
        initial_k: flags.num("k0", 5)?,
        sl_threshold_n: flags.num("n", 10)?,
        max_k: flags.num("max-k", 64)?,
    })
}

fn open_log(flags: &Flags) -> Result<seqpoint::seqpoint_core::EpochLog, CliError> {
    let path = flags.required("log")?;
    cli::parse_epoch_log(BufReader::new(File::open(path)?))
}

/// Resolve the client-side connection flags: exactly one of `--socket
/// PATH` (Unix) or `--connect HOST:PORT` (TCP), plus the optional
/// credential and patience flags.
fn connect_args(flags: &Flags) -> Result<cli::ConnectArgs, CliError> {
    let endpoint = match (flags.get("socket"), flags.get("connect")) {
        (Some(path), None) => seqpoint::seqpoint_service::Endpoint::unix(path),
        (None, Some(addr)) => seqpoint::seqpoint_service::Endpoint::tcp(addr),
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "give either --socket PATH or --connect HOST:PORT, not both".to_owned(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage(
                "--socket PATH or --connect HOST:PORT is required".to_owned(),
            ))
        }
    };
    Ok(cli::ConnectArgs {
        endpoint,
        token_file: flags.get("token-file").map(std::path::PathBuf::from),
        io_timeout_secs: match flags.get("io-timeout") {
            Some(_) => Some(flags.num("io-timeout", 600u64)?),
            None => None,
        },
        client: flags.get("client").map(str::to_owned),
    })
}

fn run() -> Result<String, CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(CliError::Usage(USAGE.to_owned()));
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "simulate" => cli::simulate(
            flags.required("model")?,
            flags.required("dataset")?,
            flags.num("samples", 20_000usize)?,
            flags.num("config", 1usize)?,
            flags.num("seed", 7u64)?,
        ),
        "stream" => {
            let stream_config = seqpoint::seqpoint_core::stream::StreamConfig {
                saturation_window: flags.num("window", 256u64)?,
                unseen_threshold: flags.num("unseen", 0.05f64)?,
                quantization: flags.num("quant", 8u32)?,
                pipeline: pipeline_config(&flags)?,
            };
            let options = seqpoint::sqnn_profiler::stream::StreamOptions {
                shards: flags.num("shards", 4usize)?,
                round_len: flags.num("round", 64usize)?,
                stream: stream_config,
                ..Default::default()
            };
            let checkpoint = match flags.get("checkpoint") {
                Some(path) => Some(seqpoint::sqnn_profiler::stream::CheckpointOptions {
                    path: path.into(),
                    every_rounds: flags.num("checkpoint-every", 8u32)?,
                    max_rounds: if flags.get("max-rounds").is_some() {
                        Some(flags.num("max-rounds", 0u64)?)
                    } else {
                        None
                    },
                }),
                None if flags.get("checkpoint-every").is_some()
                    || flags.get("max-rounds").is_some() =>
                {
                    return Err(CliError::Usage(
                        "--checkpoint-every/--max-rounds need --checkpoint FILE".to_owned(),
                    ));
                }
                None => None,
            };
            cli::stream(
                flags.required("model")?,
                flags.required("dataset")?,
                flags.num("samples", 20_000usize)?,
                flags.num("config", 1usize)?,
                flags.num("seed", 7u64)?,
                flags.num("batch", 64u32)?,
                &options,
                checkpoint.as_ref(),
            )
        }
        "serve" => {
            let args = cli::ServeArgs {
                socket: flags.required("socket")?.into(),
                tcp: flags.get("tcp").map(str::to_owned),
                token_file: flags.get("token-file").map(std::path::PathBuf::from),
                state_dir: flags.required("state-dir")?.into(),
                jobs: flags.num("jobs", 2usize)?,
                queue_cap: flags.num("queue-cap", 16usize)?,
                retain_jobs: match flags.get("retain-jobs") {
                    Some(_) => Some(flags.num("retain-jobs", 0usize)?),
                    None => None,
                },
                retain_for: match flags.get("retain-for") {
                    Some(_) => Some(flags.num("retain-for", 0u64)?),
                    None => None,
                },
                placement: flags.get("placement").unwrap_or("thread").to_owned(),
                workers: flags.num("workers", 2usize)?,
                fair: match (flags.get("fair"), flags.get("fifo")) {
                    (Some(_), Some(_)) => {
                        return Err(CliError::Usage(
                            "give either --fair or --fifo, not both".to_owned(),
                        ))
                    }
                    (_, Some(_)) => false,
                    _ => true,
                },
                quota: match flags.get("quota") {
                    Some(_) => Some(flags.num("quota", 0usize)?),
                    None => None,
                },
                metrics_addr: flags.get("metrics-addr").map(str::to_owned),
            };
            cli::serve(&args)
        }
        "worker" => cli::worker(&connect_args(&flags)?),
        "submit" => {
            let conn = connect_args(&flags)?;
            let action = if flags.get("ping").is_some() {
                cli::SubmitAction::Ping
            } else if flags.get("shutdown").is_some() {
                cli::SubmitAction::Shutdown
            } else if let Some(job) = flags.get("status") {
                cli::SubmitAction::Status(job.to_owned())
            } else if let Some(job) = flags.get("result") {
                cli::SubmitAction::Result(job.to_owned())
            } else if let Some(job) = flags.get("cancel") {
                cli::SubmitAction::Cancel(job.to_owned())
            } else {
                let spec = seqpoint::seqpoint_core::protocol::JobSpec {
                    model: flags.required("model")?.to_owned(),
                    dataset: flags.required("dataset")?.to_owned(),
                    samples: flags.num("samples", 20_000u64)?,
                    config: flags.num("config", 1u32)?,
                    seed: flags.num("seed", 7u64)?,
                    batch: flags.num("batch", 64u32)?,
                    shards: flags.num("shards", 4u32)?,
                    round_len: flags.num("round", 64u32)?,
                    stream: seqpoint::seqpoint_core::stream::StreamConfig {
                        saturation_window: flags.num("window", 256u64)?,
                        unseen_threshold: flags.num("unseen", 0.05f64)?,
                        quantization: flags.num("quant", 8u32)?,
                        pipeline: pipeline_config(&flags)?,
                    },
                    max_rounds: if flags.get("max-rounds").is_some() {
                        Some(flags.num("max-rounds", 0u64)?)
                    } else {
                        None
                    },
                    throttle_ms: flags.num("throttle-ms", 0u64)?,
                    class: match flags.get("class") {
                        None => seqpoint::seqpoint_core::protocol::JobClass::Interactive,
                        Some(label) => seqpoint::seqpoint_core::protocol::JobClass::parse(label)
                            .ok_or_else(|| {
                                CliError::Usage(format!(
                                    "--class: unknown class `{label}` \
                                         (expected interactive|batch)"
                                ))
                            })?,
                    },
                    client: flags.get("client").unwrap_or("").to_owned(),
                };
                cli::SubmitAction::Job {
                    job: flags.get("job").map(str::to_owned),
                    spec,
                    detach: flags.get("detach").is_some(),
                    stats: flags.get("stats").is_some(),
                }
            };
            cli::submit(&conn, action)
        }
        "lint" => cli::lint(
            std::path::Path::new(flags.get("root").unwrap_or(".")),
            flags.get("pass"),
            flags.get("github").is_some(),
            flags.get("bless-protocol").is_some(),
        ),
        "identify" => cli::identify(&open_log(&flags)?, pipeline_config(&flags)?),
        "baselines" => cli::baselines(&open_log(&flags)?, pipeline_config(&flags)?),
        "project" => {
            let restats =
                cli::parse_sl_stats(BufReader::new(File::open(flags.required("restats")?)?))?;
            cli::project(&open_log(&flags)?, &restats, pipeline_config(&flags)?)
        }
        "--help" | "-h" | "help" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
