//! # SeqPoint — representative iterations of sequence-based neural networks
//!
//! This crate is the facade of a full reproduction of the ISPASS 2020 paper
//! *SeqPoint: Identifying Representative Iterations of Sequence-based Neural
//! Networks* (Pati, Aga, Sinclair, Jayasena). It re-exports the workspace
//! member crates so downstream users can depend on a single package:
//!
//! * [`seqpoint_core`] — the SeqPoint methodology itself: sequence-length
//!   binning, representative selection, weighting, projection, and the
//!   baseline selectors the paper compares against.
//! * [`gpu_sim`] — an analytic GPU timing and performance-counter simulator
//!   standing in for the paper's AMD Vega FE hardware (Table II configs).
//! * [`sqnn`] — layer-level models of GNMT, DeepSpeech2, a CNN contrast
//!   network, and a Transformer that emit per-iteration kernel traces.
//! * [`sqnn_data`] — synthetic corpora reproducing the sequence-length
//!   distributions of IWSLT15 and LibriSpeech-100h, plus batching policies.
//! * [`sqnn_profiler`] — the profiling harness that ties a network, a
//!   dataset and a simulated device into per-iteration epoch logs.
//! * [`seqpoint_experiments`] — drivers regenerating every table and figure
//!   of the paper's evaluation.
//! * [`seqpoint_service`] — the async profiling service behind
//!   `seqpoint serve`/`submit`/`worker`: a Unix-socket job queue with
//!   multi-worker shard placement and checkpoint-based drain/resume.
//! * [`seqpoint_analysis`] — the `seqpoint-lint` static-analysis passes
//!   (lock order, panic paths, protocol drift) behind `seqpoint lint`.
//!
//! ## Quickstart
//!
//! ```
//! use seqpoint::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Profile one epoch of GNMT on the paper's config #1 …
//! let device = Device::new(GpuConfig::vega_fe());
//! let corpus = Corpus::iwslt15_like(2_000, 7);
//! let plan = EpochPlan::new(&corpus, BatchPolicy::shuffled(64), 7)?;
//! let net = gnmt();
//! let profile = Profiler::new().profile_epoch(&net, &plan, &device)?;
//!
//! // … and distill it into a handful of SeqPoints.
//! let analysis = SeqPointPipeline::new().run(&profile.to_epoch_log())?;
//! println!("{} SeqPoints, {:.2}% self error",
//!          analysis.seqpoints().len(),
//!          analysis.self_error_pct());
//! # Ok(())
//! # }
//! ```

pub use gpu_sim;
pub use seqpoint_analysis;
pub use seqpoint_core;
pub use seqpoint_experiments;
pub use seqpoint_service;
pub use sqnn;
pub use sqnn_data;
pub use sqnn_profiler;

pub mod cli;

/// Commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use gpu_sim::{Device, GpuConfig, KernelDesc, KernelKind};
    pub use seqpoint_core::{
        BaselineKind, EpochLog, IterationRecord, SeqPoint, SeqPointAnalysis, SeqPointConfig,
        SeqPointPipeline, SeqPointSet, StreamConfig, StreamingAnalysis, StreamingSelector,
    };
    pub use sqnn::models::{cnn_reference, ds2, gnmt, transformer_base};
    pub use sqnn::{IterationShape, Network};
    pub use sqnn_data::{BatchPolicy, Corpus, EpochPlan};
    pub use sqnn_profiler::stream::{profile_epoch_streaming, StreamOptions};
    pub use sqnn_profiler::{EpochProfile, Profiler};
}
