//! Cross-crate check of the Section V-C remark: SeqPoints identified
//! from *runtime* project any other SL-varying statistic — hardware
//! counters and even energy — with comparable accuracy.

use seqpoint::prelude::*;
use seqpoint::seqpoint_core::multi::MultiStatLog;
use seqpoint::sqnn_profiler::StatKind;

#[test]
fn multi_stat_projection_from_runtime_seqpoints() {
    let corpus = Corpus::iwslt15_like(4_000, 23);
    let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), 23).unwrap();
    let device = Device::new(GpuConfig::vega_fe());
    let profile = Profiler::new()
        .profile_epoch(&gnmt(), &plan, &device)
        .unwrap();

    let kinds = [
        StatKind::Runtime,
        StatKind::ValuInsts,
        StatKind::DramBytes,
        StatKind::MemWriteStalls,
        StatKind::EnergyJ,
    ];
    let mut log = MultiStatLog::new(kinds.iter().map(|k| k.label())).unwrap();
    for it in profile.iterations() {
        log.push(it.seq_len, kinds.iter().map(|&k| it.stat(k)))
            .unwrap();
    }

    let analysis = log
        .analyze_with_primary(
            0,
            seqpoint::seqpoint_core::SeqPointConfig {
                error_threshold_pct: 0.05,
                // The 0.05% identification target needs more than 64 bins on
                // this corpus draw; give refinement room to converge.
                max_k: 256,
                ..Default::default()
            },
        )
        .unwrap();
    for (name, err) in analysis.errors() {
        assert!(*err < 3.0, "{name}: {err}%");
    }
    // Energy specifically projects tightly: it is nearly affine in SL.
    assert!(analysis.secondary_error_pct("energy_j").unwrap() < 1.0);
}

#[test]
fn energy_totals_track_runtime_totals_across_configs() {
    // Sanity on the energy substrate itself: a slower clock saves dynamic
    // power but pays static energy for longer, so energy moves less than
    // time does.
    let corpus = Corpus::iwslt15_like(1_500, 29);
    let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 8), 29).unwrap();
    let net = gnmt();
    let profiler = Profiler::new();
    let configs = GpuConfig::table2_configs();
    let base = profiler
        .profile_epoch(&net, &plan, &Device::new(configs[0].clone()))
        .unwrap();
    let slow = profiler
        .profile_epoch(&net, &plan, &Device::new(configs[1].clone()))
        .unwrap();
    let time_ratio = slow.training_time_s() / base.training_time_s();
    let energy = |p: &EpochProfile| -> f64 { p.iterations().iter().map(|i| i.energy_j).sum() };
    let energy_ratio = energy(&slow) / energy(&base);
    assert!(time_ratio > 1.5, "clock halving must slow training");
    assert!(
        energy_ratio > 1.0 && energy_ratio < time_ratio,
        "energy ratio {energy_ratio} should sit between 1 and the time ratio {time_ratio}"
    );
}
