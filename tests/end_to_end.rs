//! Cross-crate integration: the full SeqPoint workflow through the
//! public facade — dataset → plan → profile → identify → project across
//! hardware configurations.

use seqpoint::prelude::*;

fn projection_error_pct(
    net: &Network,
    corpus: &Corpus,
    policy: BatchPolicy,
    target_cfg: usize,
) -> (usize, f64) {
    let plan = EpochPlan::new(corpus, policy, 42).expect("corpus is non-empty");
    let profiler = Profiler::new();
    let configs = GpuConfig::table2_configs();

    // Identify on config #1 with the evaluation's tightened threshold
    // (identification error compounds into cross-config error, so the
    // default 1% `e` admits a few percent of projection drift).
    let base = Device::new(configs[0].clone());
    let profile = profiler
        .profile_epoch(net, &plan, &base)
        .expect("plan non-empty");
    let analysis = SeqPointPipeline::with_config(SeqPointConfig {
        error_threshold_pct: 0.05,
        max_k: 64,
        ..SeqPointConfig::default()
    })
    .run(&profile.to_epoch_log())
    .expect("pipeline converges");
    let points = analysis.seqpoints().clone();

    // Project the target configuration from the SeqPoints only and
    // compare with the measured epoch.
    let target = Device::new(configs[target_cfg].clone());
    let measured = profiler
        .profile_epoch(net, &plan, &target)
        .expect("plan non-empty")
        .training_time_s();
    let reprofiled = profiler.profile_seq_lens(net, plan.batch_size(), &points.seq_lens(), &target);
    let projected = points.project_total_with(|sl| {
        reprofiled
            .iter()
            .find(|p| p.seq_len == sl)
            .expect("reprofiled")
            .time_s
    });
    (
        points.len(),
        ((projected - measured) / measured).abs() * 100.0,
    )
}

#[test]
fn gnmt_cross_config_projection_is_accurate() {
    let corpus = Corpus::iwslt15_like(8_000, 42);
    // Config #2 (clock scaling) projects sub-percent …
    let (points, err) = projection_error_pct(&gnmt(), &corpus, BatchPolicy::bucketed(64, 16), 1);
    assert!(err < 0.5, "config #2 error = {err}%");
    assert!(points <= 25, "{points} points");
    // … while config #3 (quarter CUs) is the harshest target: its uplift
    // varies most with SL, so a few percent of drift is the expected
    // ceiling at this reduced scale (paper scale lands under 1%, Fig. 12).
    let (_, err3) = projection_error_pct(&gnmt(), &corpus, BatchPolicy::bucketed(64, 16), 2);
    assert!(err3 < 5.0, "config #3 error = {err3}%");
}

#[test]
fn ds2_cross_config_projection_is_sub_percent() {
    let corpus = Corpus::librispeech100_like(42);
    let small = Corpus::from_lengths("ls-small", corpus.lengths()[..3000].to_vec(), 29);
    let (points, err) =
        projection_error_pct(&ds2(), &small, BatchPolicy::sorted_first_epoch(64), 2);
    assert!(err < 1.0, "error = {err}%");
    assert!(points <= 20, "{points} points");
}

#[test]
fn transformer_also_works_end_to_end() {
    let corpus = Corpus::iwslt15_like(3_000, 42);
    // Config #3 (quarter CUs) is the harshest projection target — see the
    // GNMT test above, which bounds it at 5% for the same reason.
    let (points, err) = projection_error_pct(
        &transformer_base(),
        &corpus,
        BatchPolicy::bucketed(64, 16),
        2,
    );
    assert!(err < 5.0, "error = {err}%");
    assert!(points >= 3);
}

#[test]
fn whole_workflow_is_deterministic() {
    let run = || {
        let corpus = Corpus::iwslt15_like(2_000, 9);
        let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), 9).unwrap();
        let device = Device::new(GpuConfig::vega_fe());
        let profile = Profiler::new()
            .profile_epoch(&gnmt(), &plan, &device)
            .unwrap();
        let analysis = SeqPointPipeline::new()
            .run(&profile.to_epoch_log())
            .unwrap();
        (
            profile.training_time_s(),
            analysis.seqpoints().seq_lens(),
            analysis.self_error_pct(),
        )
    };
    assert_eq!(run(), run());
}
