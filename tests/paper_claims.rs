//! The paper's load-bearing claims, checked end to end at test scale.

use seqpoint::prelude::*;
use seqpoint::seqpoint_core::stats::coefficient_of_variation_pct;
use seqpoint::sqnn_profiler::parallel::{profile_seq_lens_parallel, profiling_cost};

fn gnmt_setup() -> (Network, EpochPlan) {
    let corpus = Corpus::iwslt15_like(4_000, 17);
    let plan = EpochPlan::new(&corpus, BatchPolicy::bucketed(64, 16), 17).unwrap();
    (gnmt(), plan)
}

/// Section III: SQNN iterations are heterogeneous; CNN iterations are not.
#[test]
fn claim_sqnn_iterations_are_heterogeneous() {
    let (net, plan) = gnmt_setup();
    let device = Device::new(GpuConfig::vega_fe());
    let profile = Profiler::new().profile_epoch(&net, &plan, &device).unwrap();
    let times: Vec<f64> = profile.iterations().iter().map(|i| i.time_s).collect();
    assert!(coefficient_of_variation_pct(&times) > 20.0);

    let cnn = cnn_reference();
    let fixed = Corpus::fixed_length("img", 224, 640);
    let cnn_plan = EpochPlan::new(&fixed, BatchPolicy::shuffled(64), 17).unwrap();
    let cnn_profile = Profiler::new()
        .profile_epoch(&cnn, &cnn_plan, &device)
        .unwrap();
    let cnn_times: Vec<f64> = cnn_profile.iterations().iter().map(|i| i.time_s).collect();
    assert!(coefficient_of_variation_pct(&cnn_times) < 0.01);
}

/// Key observations 4–5: same SL ⇒ same behaviour; the dataset's unique
/// SLs bound the representative set.
#[test]
fn claim_same_sl_same_behaviour() {
    let (net, plan) = gnmt_setup();
    let device = Device::new(GpuConfig::vega_fe());
    let profile = Profiler::new().profile_epoch(&net, &plan, &device).unwrap();
    use std::collections::HashMap;
    let mut by_sl: HashMap<(u32, u32), f64> = HashMap::new();
    for it in profile.iterations() {
        let prev = by_sl.insert((it.seq_len, it.samples), it.time_s);
        if let Some(prev) = prev {
            assert_eq!(prev, it.time_s, "SL {} behaved differently", it.seq_len);
        }
    }
}

/// Section V: the SeqPoint count is small and weights cover the epoch.
#[test]
fn claim_few_seqpoints_cover_the_epoch() {
    let (net, plan) = gnmt_setup();
    let device = Device::new(GpuConfig::vega_fe());
    let profile = Profiler::new().profile_epoch(&net, &plan, &device).unwrap();
    let analysis = SeqPointPipeline::new()
        .run(&profile.to_epoch_log())
        .unwrap();
    assert!(analysis.seqpoints().len() <= 16);
    assert_eq!(
        analysis.seqpoints().total_weight() as usize,
        plan.iterations()
    );
    assert!(analysis.self_error_pct() <= 1.0);
}

/// Section VI-F: SeqPoints are independent iterations; parallel profiling
/// gives identical results and wall time equal to the slowest point.
#[test]
fn claim_seqpoints_profile_in_parallel() {
    let (net, plan) = gnmt_setup();
    let device = Device::new(GpuConfig::vega_fe());
    let profiler = Profiler::new();
    let profile = profiler.profile_epoch(&net, &plan, &device).unwrap();
    let analysis = SeqPointPipeline::new()
        .run(&profile.to_epoch_log())
        .unwrap();
    let sls = analysis.seqpoints().seq_lens();

    let serial = profiler.profile_seq_lens(&net, 64, &sls, &device);
    let parallel = profile_seq_lens_parallel(&profiler, &net, 64, &sls, &device);
    assert_eq!(serial, parallel);

    let cost = profiling_cost(&parallel);
    let epoch = profile.total_time_s();
    assert!(epoch / cost.serial_s > 5.0);
    assert!(cost.parallel_s < cost.serial_s);
}

/// Key observation 6: vocabulary size matters and must not be scaled.
#[test]
fn claim_vocabulary_affects_iteration_time() {
    let device = Device::new(GpuConfig::vega_fe());
    let profiler = Profiler::new();
    let full = seqpoint::sqnn::models::gnmt_with(36_549, 1024);
    let scaled = seqpoint::sqnn::models::gnmt_with(4_000, 1024);
    let t_full = profiler
        .profile_seq_lens(&full, 64, &[40], &device)
        .remove(0)
        .time_s;
    let t_scaled = profiler
        .profile_seq_lens(&scaled, 64, &[40], &device)
        .remove(0)
        .time_s;
    assert!(
        t_full > t_scaled * 1.1,
        "full-vocab iteration {t_full} should clearly exceed scaled {t_scaled}"
    );
}

/// Table I: the classifier GEMM dimensions match the paper exactly.
#[test]
fn claim_table1_gemm_dimensions() {
    use seqpoint::gpu_sim::AutotuneTable;
    let device = Device::new(GpuConfig::vega_fe());
    let mut tuner = AutotuneTable::new();
    let trace = gnmt().iteration_trace(&IterationShape::new(64, 94), device.config(), &mut tuner);
    let expected = 2.0 * 36_549.0 * 1024.0 * 6016.0;
    assert!(trace.iter().any(|k| (k.flops() - expected).abs() < 1.0));
    let trace = ds2().iteration_trace(&IterationShape::new(64, 402), device.config(), &mut tuner);
    let expected = 2.0 * 29.0 * 1600.0 * 25_728.0;
    assert!(trace.iter().any(|k| (k.flops() - expected).abs() < 1.0));
}
