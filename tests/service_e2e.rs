//! End-to-end service tests through the real `seqpoint` binary with
//! **subprocess** worker placement — the single-machine proof of the
//! multi-node story:
//!
//! * shard chunks execute in separate `seqpoint worker` processes,
//!   exchanging checkpoint-format shard state over the socket;
//! * killing a worker mid-job loses at most one round: the job is
//!   reassigned from its last per-round checkpoint, the supervisor
//!   respawns the worker, and the final selection is byte-identical to
//!   the offline `seqpoint stream` run;
//! * concurrent jobs are served correctly side by side;
//! * the same story holds over **TCP with token auth**: externally
//!   started `seqpoint worker --connect` processes serve rounds for a
//!   job submitted over `submit --connect`, a SIGKILLed TCP worker
//!   costs at most one round, and the result is byte-identical to the
//!   offline run.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_seqpoint")
}

/// A scratch dir removed on drop; kills the server first.
struct Harness {
    dir: PathBuf,
    server: Option<Child>,
}

impl Harness {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("seqpoint-e2e-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Harness { dir, server: None }
    }

    fn socket(&self) -> PathBuf {
        self.dir.join("sock")
    }

    fn state(&self) -> PathBuf {
        self.dir.join("state")
    }

    /// Start `seqpoint serve` and wait until it answers pings.
    fn start_server(&mut self, extra: &[&str]) {
        assert!(self.server.is_none());
        let child = Command::new(bin())
            .arg("serve")
            .arg("--socket")
            .arg(self.socket())
            .arg("--state-dir")
            .arg(self.state())
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning serve");
        self.server = Some(child);
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let ping = self.submit(&["--ping"]);
            if ping.status.success() {
                return;
            }
            assert!(Instant::now() < deadline, "server never came up");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn submit(&self, args: &[&str]) -> Output {
        Command::new(bin())
            .arg("submit")
            .arg("--socket")
            .arg(self.socket())
            .args(args)
            .output()
            .expect("running submit")
    }

    fn token_file(&self) -> PathBuf {
        self.dir.join("token")
    }

    /// Write the shared secret the TCP tests hand to serve/submit/worker.
    fn write_token(&self) -> PathBuf {
        let path = self.token_file();
        std::fs::write(&path, "e2e-tcp-secret\n").unwrap();
        path
    }

    /// The daemon's published TCP address (waits for `serve.tcp`).
    fn tcp_addr(&self) -> String {
        let path = self.state().join("serve.tcp");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(addr) = std::fs::read_to_string(&path) {
                if !addr.trim().is_empty() {
                    return addr.trim().to_owned();
                }
            }
            assert!(Instant::now() < deadline, "serve.tcp never appeared");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// `seqpoint submit --connect <tcp> --token-file <token> …`.
    fn submit_tcp(&self, addr: &str, args: &[&str]) -> Output {
        Command::new(bin())
            .arg("submit")
            .arg("--connect")
            .arg(addr)
            .arg("--token-file")
            .arg(self.token_file())
            .args(args)
            .output()
            .expect("running submit over tcp")
    }

    fn shutdown_and_join(&mut self) {
        let _ = self.submit(&["--shutdown"]);
        if let Some(mut child) = self.server.take() {
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                match child.try_wait().expect("waiting for serve") {
                    Some(status) => {
                        assert!(status.success(), "serve exited with {status}");
                        break;
                    }
                    None => {
                        assert!(Instant::now() < deadline, "serve never drained");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
        }
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        if let Some(mut child) = self.server.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn stdout_of(output: &Output) -> String {
    assert!(
        output.status.success(),
        "command failed: {}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout.clone()).unwrap()
}

/// The offline `seqpoint stream` output for the given spec flags.
fn offline_stream(spec: &[&str]) -> String {
    let output = Command::new(bin())
        .arg("stream")
        .args(spec)
        .output()
        .expect("running stream");
    stdout_of(&output)
}

fn worker_pids(harness: &Harness) -> Vec<u64> {
    let pong = stdout_of(&harness.submit(&["--ping"]));
    let workers = pong
        .trim()
        .split(',')
        .find_map(|field| field.strip_prefix("workers="))
        .unwrap_or("");
    workers
        .split_whitespace()
        .map(|pid| pid.parse().unwrap())
        .collect()
}

fn job_state(harness: &Harness, job: &str) -> String {
    let line = stdout_of(&harness.submit(&["--status", job]));
    line.trim().split(',').nth(1).unwrap_or("").to_owned()
}

/// Spec used by the chaos test: paced with a per-round throttle so the
/// job takes seconds, never early-stops, and is therefore guaranteed to
/// be mid-run when the worker dies.
const CHAOS_SPEC: &[&str] = &[
    "--model",
    "gnmt",
    "--dataset",
    "iwslt15",
    "--samples",
    "4000",
    "--batch",
    "16",
    "--shards",
    "3",
    "--round",
    "16",
    "--window",
    "99999999",
    "--quant",
    "8",
    "--seed",
    "20",
];

#[test]
fn killing_a_worker_mid_round_reassigns_the_job_from_its_checkpoint() {
    let mut harness = Harness::new("killworker");
    harness.start_server(&["--jobs", "1", "--placement", "subprocess", "--workers", "2"]);

    // Offline reference (thread placement, no service) for the same spec.
    let reference = offline_stream(CHAOS_SPEC);

    // Submit detached, throttled to ~150 ms/round (≈ 16 rounds → several
    // seconds of runtime).
    let mut submit_args = CHAOS_SPEC.to_vec();
    submit_args.extend(["--throttle-ms", "150", "--job", "chaos", "--detach"]);
    let line = stdout_of(&harness.submit(&submit_args));
    assert_eq!(line.trim(), "submitted,chaos");

    // Let it get going, then SIGKILL one of the two workers.
    std::thread::sleep(Duration::from_millis(700));
    assert_eq!(job_state(&harness, "chaos"), "running");
    let pids = worker_pids(&harness);
    assert_eq!(pids.len(), 2, "expected two live workers, got {pids:?}");
    let victim = pids[0];
    let killed = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -9 {victim}"))
        .status()
        .unwrap();
    assert!(killed.success());
    // The job must still be in flight at this point for the kill to
    // prove anything.
    assert_ne!(job_state(&harness, "chaos"), "done");

    // The dead worker's connection is still pooled, so the very next
    // round trips over it: the executor poisons the round, the runner
    // requeues the job, and it resumes from the last per-round
    // checkpoint on the respawned worker population — completing with
    // the exact offline selection.
    let result = stdout_of(&harness.submit(&["--result", "chaos"]));
    assert_eq!(result, reference, "post-kill selection diverged");

    // Supervision: the worker population recovers to its target size.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let pids = worker_pids(&harness);
        if pids.len() == 2 && !pids.contains(&victim) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker population never recovered: {pids:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    harness.shutdown_and_join();
}

#[test]
fn concurrent_submissions_serve_distinct_correct_results() {
    let mut harness = Harness::new("concurrent");
    harness.start_server(&["--jobs", "2", "--placement", "subprocess", "--workers", "2"]);

    let spec_a: &[&str] = &[
        "--model",
        "gnmt",
        "--dataset",
        "iwslt15",
        "--samples",
        "6000",
        "--batch",
        "16",
        "--shards",
        "3",
        "--round",
        "32",
        "--window",
        "128",
        "--quant",
        "8",
        "--seed",
        "20",
    ];
    let spec_b: &[&str] = &[
        "--model",
        "gnmt",
        "--dataset",
        "iwslt15",
        "--samples",
        "5000",
        "--batch",
        "16",
        "--shards",
        "3",
        "--round",
        "32",
        "--window",
        "128",
        "--quant",
        "8",
        "--seed",
        "21",
    ];
    let ref_a = offline_stream(spec_a);
    let ref_b = offline_stream(spec_b);

    // Submit both without waiting, then collect both results.
    let mut detach_a = spec_a.to_vec();
    detach_a.extend(["--job", "a", "--detach"]);
    let mut detach_b = spec_b.to_vec();
    detach_b.extend(["--job", "b", "--detach"]);
    stdout_of(&harness.submit(&detach_a));
    stdout_of(&harness.submit(&detach_b));

    let out_a = stdout_of(&harness.submit(&["--result", "a"]));
    let out_b = stdout_of(&harness.submit(&["--result", "b"]));
    assert_eq!(out_a, ref_a);
    assert_eq!(out_b, ref_b);
    assert_ne!(out_a, out_b);

    harness.shutdown_and_join();
}

#[test]
fn killing_a_tcp_worker_mid_round_costs_at_most_one_round() {
    let mut harness = Harness::new("killtcpworker");
    let token = harness.write_token();
    // `--workers 0`: the daemon spawns no local workers — every round is
    // served by the externally started TCP workers below, exactly the
    // multi-node topology (workers on another machine are the same
    // command with a remote host).
    harness.start_server(&[
        "--jobs",
        "1",
        "--placement",
        "subprocess",
        "--workers",
        "0",
        "--tcp",
        "127.0.0.1:0",
        "--token-file",
        token.to_str().unwrap(),
    ]);
    let addr = harness.tcp_addr();

    let mut workers: Vec<Child> = (0..2)
        .map(|_| {
            Command::new(bin())
                .arg("worker")
                .arg("--connect")
                .arg(&addr)
                .arg("--token-file")
                .arg(&token)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawning tcp worker")
        })
        .collect();

    let reference = offline_stream(CHAOS_SPEC);

    // Submit over TCP, throttled so the kill lands mid-run.
    let mut submit_args = CHAOS_SPEC.to_vec();
    submit_args.extend(["--throttle-ms", "150", "--job", "tcp-chaos", "--detach"]);
    let line = stdout_of(&harness.submit_tcp(&addr, &submit_args));
    assert_eq!(line.trim(), "submitted,tcp-chaos");

    std::thread::sleep(Duration::from_millis(700));
    let status = stdout_of(&harness.submit_tcp(&addr, &["--status", "tcp-chaos"]));
    assert!(status.contains(",running,"), "not mid-run: {status}");

    // SIGKILL one of the two TCP workers. The poisoned round is retried
    // from the last per-round checkpoint on the surviving worker — at
    // most one round of work is repeated, none is lost, and the
    // selection is unchanged.
    let victim = workers.remove(0);
    let victim_pid = victim.id();
    let killed = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -9 {victim_pid}"))
        .status()
        .unwrap();
    assert!(killed.success());
    {
        let mut victim = victim;
        let _ = victim.wait();
    }
    let status = stdout_of(&harness.submit_tcp(&addr, &["--status", "tcp-chaos"]));
    assert!(
        !status.contains(",done,"),
        "job finished before the kill; chaos untested: {status}"
    );

    let result = stdout_of(&harness.submit_tcp(&addr, &["--result", "tcp-chaos"]));
    assert_eq!(result, reference, "post-kill TCP selection diverged");

    // An unauthenticated client is still locked out while all this runs.
    let unauthenticated = Command::new(bin())
        .arg("submit")
        .arg("--connect")
        .arg(&addr)
        .arg("--ping")
        .output()
        .unwrap();
    assert!(!unauthenticated.status.success());

    harness.shutdown_and_join();
    for mut worker in workers {
        // Drain closed the pooled connections; the survivor exits on its
        // own. Reap it (kill first in case the drain raced).
        let _ = worker.kill();
        let _ = worker.wait();
    }
}

#[test]
fn worker_subcommand_fails_cleanly_without_a_server() {
    let missing = std::env::temp_dir().join(format!("seqpoint-e2e-nosock-{}", std::process::id()));
    let output = Command::new(bin())
        .arg("worker")
        .arg("--socket")
        .arg(&missing)
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("connecting"), "unhelpful error: {stderr}");
}
